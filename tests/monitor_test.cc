/**
 * @file
 * Tests for the SmartMonitor extension: the channel substrate, the
 * sampling policy, the agent's safeguards, and the end-to-end
 * coverage-vs-uniform result.
 */
#include <gtest/gtest.h>

#include "agents/smartmonitor/smartmonitor.h"
#include "experiments/monitor_experiments.h"
#include "node/channel_array.h"
#include "sim/event_queue.h"

namespace sol::agents {
namespace {

using sim::EventQueue;
using sim::Millis;
using sim::Seconds;
using sim::TimePoint;

// ---------------------------------------------------------------------------
// ChannelArray
// ---------------------------------------------------------------------------

TEST(ChannelArrayTest, RejectsBadConfig)
{
    EXPECT_THROW(node::ChannelArray(0, Seconds(1)), std::invalid_argument);
    EXPECT_THROW(node::ChannelArray(4, Seconds(0)), std::invalid_argument);
}

TEST(ChannelArrayTest, IncidentsGeneratedAtConfiguredRate)
{
    node::ChannelArray channels(2, Seconds(1000));
    channels.SetIncidentRate(0, 5.0);
    sim::Rng rng(3);
    for (TimePoint t(0); t < Seconds(100); t += Millis(20)) {
        channels.Advance(t, Millis(20), rng);
    }
    // ~500 incidents on channel 0, none on channel 1.
    EXPECT_NEAR(static_cast<double>(channels.stats().generated), 500.0,
                80.0);
}

TEST(ChannelArrayTest, SampleDetectsAndClears)
{
    node::ChannelArray channels(2, Seconds(1000));
    channels.SetIncidentRate(0, 50.0);
    sim::Rng rng(3);
    for (TimePoint t(0); t < Seconds(1); t += Millis(20)) {
        channels.Advance(t, Millis(20), rng);
    }
    const int found = channels.Sample(0, Seconds(1));
    EXPECT_GT(found, 0);
    EXPECT_EQ(channels.Sample(0, Seconds(1)), 0);  // Already detected.
    EXPECT_EQ(channels.stats().detected,
              static_cast<std::uint64_t>(found));
}

TEST(ChannelArrayTest, UnsampledIncidentsAgeOut)
{
    node::ChannelArray channels(1, Millis(500));
    channels.SetIncidentRate(0, 50.0);
    sim::Rng rng(5);
    for (TimePoint t(0); t < Seconds(5); t += Millis(20)) {
        channels.Advance(t, Millis(20), rng);
    }
    EXPECT_GT(channels.stats().missed, 0u);
    EXPECT_LT(channels.stats().Coverage(), 0.5);
}

TEST(ChannelArrayTest, SampleErrorInjection)
{
    node::ChannelArray channels(1, Seconds(10));
    channels.InjectSampleErrors(1);
    bool error = false;
    EXPECT_EQ(channels.Sample(0, Seconds(1), &error), -1);
    EXPECT_TRUE(error);
    channels.Sample(0, Seconds(1), &error);
    EXPECT_FALSE(error);
}

TEST(ChannelArrayTest, DetectionLatencyRecorded)
{
    node::ChannelArray channels(1, Seconds(100));
    channels.SetIncidentRate(0, 100.0);
    sim::Rng rng(7);
    channels.Advance(TimePoint(0), Millis(20), rng);
    ASSERT_EQ(channels.stats().generated, 1u);
    channels.Sample(0, Seconds(2));
    ASSERT_EQ(channels.detection_latencies().size(), 1u);
    EXPECT_NEAR(channels.detection_latencies()[0], 2.0, 0.05);
}

// ---------------------------------------------------------------------------
// SamplingPolicy
// ---------------------------------------------------------------------------

TEST(SamplingPolicyTest, UniformCoversAllChannels)
{
    SamplingPolicy policy(8);
    sim::Rng rng(9);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i) {
        ++counts[policy.Pick(rng)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, 1000, 150);
    }
}

TEST(SamplingPolicyTest, WeightsSkewPicks)
{
    SamplingPolicy policy(4);
    policy.SetWeights({8.0, 1.0, 1.0, 0.0});
    sim::Rng rng(11);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 10000; ++i) {
        ++counts[policy.Pick(rng)];
    }
    EXPECT_GT(counts[0], 7000);
    EXPECT_EQ(counts[3], 0);
    EXPECT_FALSE(policy.is_uniform());
}

TEST(SamplingPolicyTest, RejectsBadWeights)
{
    SamplingPolicy policy(3);
    EXPECT_THROW(policy.SetWeights({1.0}), std::invalid_argument);
    EXPECT_THROW(policy.SetWeights({1.0, -1.0, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(policy.SetWeights({0.0, 0.0, 0.0}),
                 std::invalid_argument);
}

TEST(SamplingPolicyTest, StarvationTracksUnvisitedChannels)
{
    SamplingPolicy policy(10, 100);
    EXPECT_DOUBLE_EQ(policy.StarvedFraction(), 0.0);  // No data yet.
    for (int i = 0; i < 50; ++i) {
        policy.RecordVisit(0);
    }
    EXPECT_NEAR(policy.StarvedFraction(), 0.9, 1e-9);
    for (node::ChannelId c = 0; c < 10; ++c) {
        policy.RecordVisit(c);
    }
    EXPECT_DOUBLE_EQ(policy.StarvedFraction(), 0.0);
}

// ---------------------------------------------------------------------------
// MonitorModel / MonitorActuator
// ---------------------------------------------------------------------------

class SmartMonitorTest : public ::testing::Test
{
  protected:
    SmartMonitorTest()
        : channels(8, Seconds(2)),
          policy(8),
          model(channels, policy, queue),
          actuator(policy)
    {
    }

    EventQueue queue;
    node::ChannelArray channels;
    SamplingPolicy policy;
    MonitorModel model;
    MonitorActuator actuator;
};

TEST_F(SmartMonitorTest, ScheduleValid)
{
    EXPECT_TRUE(SmartMonitorSchedule().IsValid());
}

TEST_F(SmartMonitorTest, RejectsTinyBudget)
{
    SmartMonitorConfig config;
    config.budget_per_round = 1;
    EXPECT_THROW(MonitorModel(channels, policy, queue, config),
                 std::invalid_argument);
}

TEST_F(SmartMonitorTest, CollectRespectsBudget)
{
    const MonitorRound round = model.CollectData();
    EXPECT_EQ(round.samples, 3);  // Default budget.
    EXPECT_EQ(channels.samples_taken(), 3u);
}

TEST_F(SmartMonitorTest, ValidationRejectsCorruptedRounds)
{
    EXPECT_TRUE(model.ValidateData(MonitorRound{3, 0, 1}));
    EXPECT_FALSE(model.ValidateData(MonitorRound{3, 1, 0}));
}

TEST_F(SmartMonitorTest, CorruptedDriverDetected)
{
    channels.InjectSampleErrors(100);
    const MonitorRound round = model.CollectData();
    EXPECT_GT(round.errors, 0);
}

TEST_F(SmartMonitorTest, LearnsHotChannelPropensity)
{
    channels.SetIncidentRate(3, 20.0);
    sim::Rng rng(13);
    for (int round = 0; round < 400; ++round) {
        channels.Advance(queue.Now(), Millis(100), rng);
        queue.RunFor(Millis(100));
        const MonitorRound r = model.CollectData();
        if (model.ValidateData(r)) {
            model.CommitData(queue.Now(), r);
        }
        if (round % 10 == 9) {
            model.UpdateModel();
        }
    }
    EXPECT_GT(model.Propensity(3), 2.0 * model.Propensity(0));
}

TEST_F(SmartMonitorTest, DefaultPredictionIsUniform)
{
    const auto pred = model.DefaultPredict();
    EXPECT_TRUE(pred.is_default);
    for (const double w : pred.value) {
        EXPECT_DOUBLE_EQ(w, 1.0 / 8.0);
    }
}

TEST_F(SmartMonitorTest, PredictionHasUniformFloor)
{
    const auto pred = model.ModelPredict();
    ASSERT_EQ(pred.value.size(), 8u);
    for (const double w : pred.value) {
        EXPECT_GE(w, 0.15 / 8.0 - 1e-12);
    }
}

TEST_F(SmartMonitorTest, ActuatorAppliesAndResets)
{
    std::vector<double> weights(8, 0.0);
    weights[2] = 1.0;
    actuator.TakeAction(
        core::MakePrediction(weights, queue.Now(), Seconds(5)));
    EXPECT_FALSE(policy.is_uniform());
    actuator.TakeAction(std::nullopt);
    EXPECT_TRUE(policy.is_uniform());
}

TEST_F(SmartMonitorTest, StarvationSafeguardMitigates)
{
    std::vector<double> weights(8, 0.0);
    weights[0] = 1.0;
    policy.SetWeights(weights);
    sim::Rng rng(15);
    for (int i = 0; i < 200; ++i) {
        policy.Pick(rng);
    }
    EXPECT_FALSE(actuator.AssessPerformance());
    EXPECT_GT(actuator.last_starved_fraction(), 0.5);
    actuator.Mitigate();
    EXPECT_TRUE(policy.is_uniform());
}

TEST_F(SmartMonitorTest, CleanUpIdempotent)
{
    std::vector<double> weights(8, 1.0);
    policy.SetWeights(weights);
    actuator.CleanUp();
    actuator.CleanUp();
    EXPECT_TRUE(policy.is_uniform());
}

// ---------------------------------------------------------------------------
// End-to-end extension scenario
// ---------------------------------------------------------------------------

TEST(MonitorIntegrationTest, BeatsUniformAtSameBudget)
{
    experiments::MonitorRunConfig config;
    config.duration = Seconds(300);
    experiments::MonitorRunConfig uniform = config;
    uniform.uniform_baseline = true;

    const auto smart = experiments::RunMonitor(config);
    const auto base = experiments::RunMonitor(uniform);

    EXPECT_EQ(smart.samples, base.samples);  // Same budget.
    EXPECT_GT(smart.coverage, base.coverage);
    EXPECT_LT(smart.mean_latency_s, base.mean_latency_s);
}

TEST(MonitorIntegrationTest, DeterministicForSameSeed)
{
    experiments::MonitorRunConfig config;
    config.duration = Seconds(100);
    const auto a = experiments::RunMonitor(config);
    const auto b = experiments::RunMonitor(config);
    EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.incidents, b.incidents);
}

TEST(MonitorIntegrationTest, SurvivesHotSetShifts)
{
    experiments::MonitorRunConfig config;
    config.duration = Seconds(400);
    config.shift_interval = Seconds(100);
    const auto run = experiments::RunMonitor(config);
    EXPECT_GT(run.coverage, 0.85);
}

}  // namespace
}  // namespace sol::agents
