/**
 * @file
 * Node-level differential parity: ThreadedMultiAgentNode (77 real
 * agent threads, hardened concurrent arbiter) must produce
 * field-for-field identical aggregated RuntimeStats, per-agent runtime
 * gauges, and arbiter conflict/denial counters to the simulated
 * MultiAgentNode over identical scripted scenarios. This extends the
 * single-runtime parity gate (tests/runtime_parity_test.cc) to the
 * full node: shared arbiter, registry teardown paths, and restarts
 * while peers hold coupled domains.
 *
 * Determinism strategy (see docs/CLUSTER.md "Threaded-node parity"):
 *
 *   - Only synthetic agents run (the real four share mutable substrate
 *     whose advancement is driver-paced, so their telemetry values are
 *     not instant-for-instant comparable across backends; synthetics
 *     depend only on their seed streams and the clock).
 *   - Every agent gets a distinct prime collect interval near 10 ms,
 *     so no two agents ever touch the arbiter at the same virtual
 *     instant: the global admission order is simply virtual-time
 *     order, on both backends.
 *   - On the threaded leg each agent runs on its own core::ManualClock;
 *     the harness merges all agents' tick instants into one timeline
 *     and grants exactly one tick to one agent at a time, quiescing
 *     (model parked, deliveries drained, due assessments done) before
 *     the next grant. Real threads, serialized virtual time.
 *   - Scripted restarts land exactly at the restarted agent's own tick
 *     instant, where both backends resume phase-aligned.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/multi_agent_node.h"
#include "cluster/threaded_multi_agent_node.h"
#include "core/manual_clock.h"
#include "sim/event_queue.h"
#include "workloads/trace_driver.h"

namespace sol::cluster {
namespace {

using sim::Millis;
using sim::Seconds;

using ThreadedNode = ThreadedMultiAgentNode<core::ManualClock>;

/** One scripted agent restart: after the agent's own tick `tick`. */
struct ScriptedRestart {
    std::size_t agent = 0;
    std::uint64_t tick = 1;
};

/** A complete node scenario, run identically on both node variants. */
struct NodeScenario {
    std::size_t num_agents = 2;
    sim::Duration horizon = Millis(80);
    bool safeguard = false;
    std::vector<ScriptedRestart> restarts;
    /** Optional demand oracle (must not stretch cadence: the harness
     *  timeline is built from the prime intervals). */
    const workloads::TraceDriver* trace_driver = nullptr;
    /** Applied on top of the harness baseline (never override
     *  data_collect_interval / assess_actuator_interval — the harness
     *  owns the timing). */
    std::function<void(std::size_t, SyntheticAgentConfig&)> customize;
};

/** Distinct prime collect intervals near 10 ms: no two agents ever
 *  share a virtual instant (k1*p1 == k2*p2 would need p2 | k1 with
 *  k1 < 20, impossible for primes ~1e7). */
std::vector<sim::Duration>
PrimeIntervals(std::size_t n)
{
    const auto is_prime = [](std::int64_t v) {
        for (std::int64_t d = 3; d * d <= v; d += 2) {
            if (v % d == 0) {
                return false;
            }
        }
        return true;
    };
    std::vector<sim::Duration> intervals;
    intervals.reserve(n);
    for (std::int64_t v = 10000019; intervals.size() < n; v += 2) {
        if (is_prime(v)) {
            intervals.push_back(sim::Nanos(v));
        }
    }
    return intervals;
}

MultiAgentNodeConfig
MakeNodeConfig(const NodeScenario& scenario,
               const std::vector<sim::Duration>& intervals)
{
    MultiAgentNodeConfig config;
    config.seed = 42;
    config.run_overclock = false;
    config.run_harvest = false;
    config.run_memory = false;
    config.run_monitor = false;
    config.synthetic_agents = scenario.num_agents;
    config.trace_driver = scenario.trace_driver;
    config.runtime.blocking_actuator = true;
    config.runtime.disable_actuator_safeguard = !scenario.safeguard;
    const bool safeguard = scenario.safeguard;
    const auto user = scenario.customize;
    config.customize_synthetic = [intervals, safeguard, user](
                                     std::size_t i,
                                     SyntheticAgentConfig& cfg) {
        cfg.data_collect_interval = intervals[i];
        cfg.assess_actuator_interval = intervals[i];
        cfg.max_epoch_time = Seconds(100);
        cfg.max_actuation_delay = Seconds(100);
        if (safeguard) {
            // Safeguard-on parity needs one delivery (hence one wake,
            // hence one due assessment) per tick: the sim backend
            // assesses on its own periodic event chain, the threaded
            // one only on delivery wakes.
            cfg.data_per_epoch = 1;
            cfg.invalid_fraction = 0.0;
        }
        if (user) {
            user(i, cfg);
        }
    };
    return config;
}

/** Collect ticks agent i completes before the horizon. */
std::vector<std::uint64_t>
TickBudgets(const NodeScenario& scenario,
            const std::vector<sim::Duration>& intervals)
{
    std::vector<std::uint64_t> budgets;
    budgets.reserve(scenario.num_agents);
    for (std::size_t i = 0; i < scenario.num_agents; ++i) {
        budgets.push_back(static_cast<std::uint64_t>(
            scenario.horizon.count() / intervals[i].count()));
    }
    return budgets;
}

std::string
AgentName(std::size_t i)
{
    return "synthetic" + std::to_string(i);
}

/** Everything the parity assertion compares. */
struct NodeLegResult {
    core::RuntimeStats aggregate;
    std::uint64_t arbiter_requests = 0;
    std::uint64_t conflicts_observed = 0;
    std::uint64_t conflicts_resolved = 0;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
};

NodeLegResult
RunSimNodeLeg(const NodeScenario& scenario,
              const std::vector<sim::Duration>& intervals)
{
    sim::EventQueue queue;
    MultiAgentNode node(queue, MakeNodeConfig(scenario, intervals));
    node.Start();

    // Restarts in virtual-time order; RunUntil is inclusive, so the
    // agent's tick-k collect (and its same-instant delivery, wake, and
    // assessment) completes before the stop.
    std::vector<std::pair<sim::TimePoint, std::size_t>> restarts;
    for (const ScriptedRestart& r : scenario.restarts) {
        restarts.emplace_back(
            sim::TimePoint(intervals[r.agent] *
                           static_cast<std::int64_t>(r.tick)),
            r.agent);
    }
    std::sort(restarts.begin(), restarts.end());
    for (const auto& [when, agent] : restarts) {
        queue.RunUntil(when);
        node.StopAgent(AgentName(agent));
        node.StartAgent(AgentName(agent));
    }
    queue.RunUntil(sim::TimePoint(scenario.horizon));
    node.Stop();
    node.CollectMetrics();

    NodeLegResult result;
    result.aggregate = node.AggregateStats();
    result.arbiter_requests = node.arbiter().requests();
    result.conflicts_observed = node.arbiter().conflicts_observed();
    result.conflicts_resolved = node.arbiter().conflicts_resolved();
    result.counters = node.metrics().counters();
    result.gauges = node.metrics().gauges();
    return result;
}

template <typename Condition>
bool
WaitUntil(Condition condition)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
        if (condition()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return condition();
}

/** Waits until agent `slot` fully digested its `granted` ticks: model
 *  parked on the tick budget, every delivery acted on or dropped, and
 *  (safeguard on) every due actuator assessment completed. Once true,
 *  the agent has no arbiter call in flight (stats are bumped after
 *  TakeAction returns), so the next agent's grant cannot race it. */
void
QuiesceAgent(ThreadedNode& node, std::size_t slot, std::uint64_t granted,
             bool safeguard)
{
    const std::string name = AgentName(slot);
    const bool done = WaitUntil([&] {
        if (!node.agent_clock(slot).Parked()) {
            return false;
        }
        const core::RuntimeStats stats = node.AgentStats(name);
        if (stats.samples_collected != granted) {
            return false;
        }
        if (stats.predictions_delivered !=
            stats.actions_with_prediction + stats.dropped_while_halted) {
            return false;
        }
        return !safeguard ||
               stats.actuator_assessments == stats.predictions_delivered;
    });
    ASSERT_TRUE(done) << name << " failed to quiesce at tick " << granted;
}

NodeLegResult
RunThreadedNodeLeg(const NodeScenario& scenario,
                   const std::vector<sim::Duration>& intervals)
{
    ThreadedNode node(MakeNodeConfig(scenario, intervals));
    node.Start();

    // Merge every agent's tick instants (and scripted restarts, which
    // sort after the same agent's same-instant tick) into one global
    // virtual timeline; all instants are distinct by the prime
    // construction, so this order IS the sim backend's event order.
    struct TimelineEvent {
        std::int64_t when;
        int kind;  // 0 = grant one tick, 1 = restart.
        std::size_t agent;
        std::uint64_t tick;
        bool operator<(const TimelineEvent& o) const
        {
            return std::tie(when, kind) < std::tie(o.when, o.kind);
        }
    };
    const std::vector<std::uint64_t> budgets =
        TickBudgets(scenario, intervals);
    std::vector<TimelineEvent> timeline;
    for (std::size_t i = 0; i < scenario.num_agents; ++i) {
        for (std::uint64_t k = 1; k <= budgets[i]; ++k) {
            timeline.push_back(
                {intervals[i].count() * static_cast<std::int64_t>(k), 0,
                 i, k});
        }
    }
    for (const ScriptedRestart& r : scenario.restarts) {
        timeline.push_back(
            {intervals[r.agent].count() *
                 static_cast<std::int64_t>(r.tick),
             1, r.agent, r.tick});
    }
    std::sort(timeline.begin(), timeline.end());

    const bool safeguard = scenario.safeguard;
    for (const TimelineEvent& event : timeline) {
        if (event.kind == 0) {
            node.agent_clock(event.agent).GrantTicks(1);
            QuiesceAgent(node, event.agent, event.tick, safeguard);
            if (testing::Test::HasFatalFailure()) {
                break;
            }
        } else {
            node.StopAgent(AgentName(event.agent));
            node.StartAgent(AgentName(event.agent));
        }
    }
    node.Stop();
    node.CollectMetrics();

    NodeLegResult result;
    result.aggregate = node.AggregateStats();
    result.arbiter_requests = node.arbiter().requests();
    result.conflicts_observed = node.arbiter().conflicts_observed();
    result.conflicts_resolved = node.arbiter().conflicts_resolved();
    result.counters = node.metrics().counters();
    result.gauges = node.metrics().gauges();
    return result;
}

/** Aggregated RuntimeStats must match on every field. */
void
ExpectStatsEqual(const core::RuntimeStats& sim,
                 const core::RuntimeStats& threaded)
{
    EXPECT_EQ(sim.samples_collected, threaded.samples_collected);
    EXPECT_EQ(sim.invalid_samples, threaded.invalid_samples);
    EXPECT_EQ(sim.epochs, threaded.epochs);
    EXPECT_EQ(sim.model_updates, threaded.model_updates);
    EXPECT_EQ(sim.short_circuit_epochs, threaded.short_circuit_epochs);
    EXPECT_EQ(sim.model_assessments, threaded.model_assessments);
    EXPECT_EQ(sim.failed_assessments, threaded.failed_assessments);
    EXPECT_EQ(sim.intercepted_predictions,
              threaded.intercepted_predictions);
    EXPECT_EQ(sim.predictions_delivered, threaded.predictions_delivered);
    EXPECT_EQ(sim.default_predictions, threaded.default_predictions);
    EXPECT_EQ(sim.expired_predictions, threaded.expired_predictions);
    EXPECT_EQ(sim.dropped_while_halted, threaded.dropped_while_halted);
    EXPECT_EQ(sim.peak_queued_predictions,
              threaded.peak_queued_predictions);
    EXPECT_EQ(sim.actions_taken, threaded.actions_taken);
    EXPECT_EQ(sim.actions_with_prediction,
              threaded.actions_with_prediction);
    EXPECT_EQ(sim.actuator_timeouts, threaded.actuator_timeouts);
    EXPECT_EQ(sim.actuator_assessments, threaded.actuator_assessments);
    EXPECT_EQ(sim.safeguard_triggers, threaded.safeguard_triggers);
    EXPECT_EQ(sim.mitigations, threaded.mitigations);
    EXPECT_EQ(sim.halted_time.count(), threaded.halted_time.count());
}

/** The full node-scope parity assertion. */
void
ExpectNodeParity(const NodeLegResult& sim, const NodeLegResult& threaded)
{
    ExpectStatsEqual(sim.aggregate, threaded.aggregate);

    EXPECT_EQ(sim.arbiter_requests, threaded.arbiter_requests);
    EXPECT_EQ(sim.conflicts_observed, threaded.conflicts_observed);
    EXPECT_EQ(sim.conflicts_resolved, threaded.conflicts_resolved);

    // Every metric counter (all counters are arbiter accounting:
    // per-agent requests/admitted/denied/restores plus per-pair denial
    // attribution, which is admission-order sensitive).
    EXPECT_EQ(sim.counters, threaded.counters);

    // Per-agent runtime gauges, field for field. The sim node also
    // writes node.* substrate gauges the threaded parity config does
    // not (no real agents -> no substrate driver); those are the only
    // keys excluded.
    for (const auto& [key, value] : threaded.gauges) {
        if (key.rfind("node.", 0) == 0) {
            continue;
        }
        const auto it = sim.gauges.find(key);
        ASSERT_TRUE(it != sim.gauges.end()) << "missing gauge " << key;
        EXPECT_EQ(it->second, value) << "gauge " << key;
    }
}

TEST(NodeParityTest, SeventySevenAgentCleanRunMatchesSimulatedNode)
{
    NodeScenario scenario;
    scenario.num_agents = 77;
    scenario.horizon = Millis(60);
    scenario.safeguard = false;

    const auto intervals = PrimeIntervals(scenario.num_agents);
    const NodeLegResult sim = RunSimNodeLeg(scenario, intervals);
    const NodeLegResult threaded =
        RunThreadedNodeLeg(scenario, intervals);
    ExpectNodeParity(sim, threaded);

    // The run did real work on all 77 agents.
    std::uint64_t expected_samples = 0;
    for (const std::uint64_t b : TickBudgets(scenario, intervals)) {
        expected_samples += b;
    }
    EXPECT_EQ(sim.aggregate.samples_collected, expected_samples);
    EXPECT_GT(sim.arbiter_requests, 0u);
}

TEST(NodeParityTest, ConflictingOverclockVsHarvestIntents)
{
    // Two agents with always/mostly-expanding actuators on the coupled
    // CPU-frequency/CPU-cores pair: the stand-in for SmartOverclock
    // boosting frequency while SmartHarvest reclaims cores. Agent 0
    // takes the hold first (its prime interval is shorter) and agent
    // 1's expands are denied until agent 0's coin restores.
    NodeScenario scenario;
    scenario.num_agents = 2;
    scenario.horizon = Millis(160);
    scenario.safeguard = false;
    scenario.customize = [](std::size_t i, SyntheticAgentConfig& cfg) {
        cfg.data_per_epoch = 1;
        cfg.invalid_fraction = 0.0;
        cfg.domain = i == 0 ? core::ActuationDomain::kCpuFrequency
                            : core::ActuationDomain::kCpuCores;
        cfg.expand_fraction = i == 0 ? 1.0 : 0.6;
    };

    const auto intervals = PrimeIntervals(scenario.num_agents);
    const NodeLegResult sim = RunSimNodeLeg(scenario, intervals);
    const NodeLegResult threaded =
        RunThreadedNodeLeg(scenario, intervals);
    ExpectNodeParity(sim, threaded);

    EXPECT_GT(sim.conflicts_observed, 0u);
    EXPECT_EQ(sim.conflicts_observed, sim.conflicts_resolved);
    EXPECT_GT(sim.counters.at("arbiter.denial.synthetic1.by.synthetic0"),
              0u);
}

TEST(NodeParityTest, SafeguardTripsMidHold)
{
    // Agent 0 expands every action and holds kCpuFrequency; its 4th,
    // 5th, and 6th actuator assessments fail, so the safeguard trips
    // while the hold is live. Mitigate restores (releasing the hold),
    // deliveries drop while halted, and the agent resumes at its 7th
    // assessment — meanwhile agent 1's expands on the coupled domain
    // flip from denied to admitted the moment the hold is released.
    NodeScenario scenario;
    scenario.num_agents = 2;
    scenario.horizon = Millis(120);
    scenario.safeguard = true;
    scenario.customize = [](std::size_t i, SyntheticAgentConfig& cfg) {
        cfg.domain = i == 0 ? core::ActuationDomain::kCpuFrequency
                            : core::ActuationDomain::kCpuCores;
        cfg.expand_fraction = 1.0;
        if (i == 0) {
            cfg.fail_assessments_from = 4;
            cfg.fail_assessments_count = 3;
        }
    };

    const auto intervals = PrimeIntervals(scenario.num_agents);
    const NodeLegResult sim = RunSimNodeLeg(scenario, intervals);
    const NodeLegResult threaded =
        RunThreadedNodeLeg(scenario, intervals);
    ExpectNodeParity(sim, threaded);

    EXPECT_EQ(sim.aggregate.safeguard_triggers, 1u);
    EXPECT_EQ(sim.aggregate.mitigations, 3u);
    EXPECT_GT(sim.aggregate.dropped_while_halted, 0u);
    EXPECT_GT(sim.conflicts_observed, 0u);
}

TEST(NodeParityTest, AgentRestartWhilePeerHoldsCoupledDomain)
{
    // Agent 0 holds kCpuCores from its first action; agent 1 is
    // stopped and restarted at its own 4th tick while that coupled
    // hold is live. The restart must not leak or duplicate deliveries,
    // and agent 1's post-restart expands must still be denied by the
    // surviving hold.
    NodeScenario scenario;
    scenario.num_agents = 2;
    scenario.horizon = Millis(160);
    scenario.safeguard = false;
    scenario.restarts = {{1, 4}};
    scenario.customize = [](std::size_t i, SyntheticAgentConfig& cfg) {
        cfg.data_per_epoch = 1;
        cfg.invalid_fraction = 0.0;
        cfg.domain = i == 0 ? core::ActuationDomain::kCpuCores
                            : core::ActuationDomain::kCpuFrequency;
        cfg.expand_fraction = i == 0 ? 1.0 : 0.5;
    };

    const auto intervals = PrimeIntervals(scenario.num_agents);
    const NodeLegResult sim = RunSimNodeLeg(scenario, intervals);
    const NodeLegResult threaded =
        RunThreadedNodeLeg(scenario, intervals);
    ExpectNodeParity(sim, threaded);

    EXPECT_GT(sim.conflicts_observed, 0u);
}

TEST(NodeParityTest, MixedFleetWithDefaultEpochShapeAndRestart)
{
    // Eight agents with the default synthetic epoch shape (5 samples
    // per epoch, 2% injected-invalid readings) and a mid-epoch restart:
    // epochs span multiple ticks, partial epochs reset on restart, and
    // the two backends must still agree on every counter.
    NodeScenario scenario;
    scenario.num_agents = 8;
    scenario.horizon = Millis(140);
    scenario.safeguard = false;
    scenario.restarts = {{3, 7}};

    const auto intervals = PrimeIntervals(scenario.num_agents);
    const NodeLegResult sim = RunSimNodeLeg(scenario, intervals);
    const NodeLegResult threaded =
        RunThreadedNodeLeg(scenario, intervals);
    ExpectNodeParity(sim, threaded);

    EXPECT_GT(sim.aggregate.epochs, 0u);
    EXPECT_GT(sim.aggregate.invalid_samples, 0u);
}

TEST(NodeParityTest, TraceDrivenFlashCrowdMatchesSimulatedNode)
{
    // A TraceDriver flash crowd over both backends: demand 0.5 outside
    // the 60-100 ms flash window (epoch targets shrink to 3 of 5
    // samples, epochs short-circuit into default actions), full demand
    // plus 2x actuation pressure inside it (full epochs, model-driven
    // expands). The driver is a pure function of the virtual clock and
    // both backends read the same instants, so every modulated counter
    // — short-circuits, model updates, arbiter admissions — must stay
    // field-for-field identical. No cadence stretch: the harness
    // timeline owns the tick instants.
    NodeScenario scenario;
    scenario.num_agents = 8;
    scenario.horizon = Millis(160);
    scenario.safeguard = false;
    scenario.customize = [](std::size_t, SyntheticAgentConfig& cfg) {
        cfg.expand_fraction = 0.6;
    };

    workloads::TraceDriverConfig driver_config;
    driver_config.seed = 21;
    driver_config.num_tenants = scenario.num_agents;
    driver_config.curve.kind = workloads::DemandCurveKind::kFlashCrowd;
    driver_config.curve.base = 0.5;
    driver_config.curve.peak = 1.0;
    driver_config.curve.at = sim::TimePoint(Millis(60));
    driver_config.curve.duration = Millis(40);
    driver_config.pressure_gain = 2.0;
    const workloads::TraceDriver driver(driver_config);
    scenario.trace_driver = &driver;

    const auto intervals = PrimeIntervals(scenario.num_agents);
    const NodeLegResult sim = RunSimNodeLeg(scenario, intervals);
    const NodeLegResult threaded =
        RunThreadedNodeLeg(scenario, intervals);
    ExpectNodeParity(sim, threaded);

    // The modulation really happened on both sides: thin epochs outside
    // the flash, full model-driven epochs inside it.
    EXPECT_GT(sim.aggregate.short_circuit_epochs, 0u);
    EXPECT_GT(sim.aggregate.model_updates, 0u);
    EXPECT_GT(sim.aggregate.default_predictions, 0u);
    EXPECT_GT(sim.arbiter_requests, 0u);
}

}  // namespace
}  // namespace sol::cluster
