/**
 * @file
 * Tests for the node substrate: power model, counters, VM management,
 * harvesting, and the two-tier memory system.
 */
#include <gtest/gtest.h>

#include <memory>

#include "node/node.h"
#include "node/power_model.h"
#include "node/tiered_memory.h"
#include "workloads/best_effort.h"
#include "workloads/disk_speed.h"

namespace sol::node {
namespace {

using sim::Millis;
using sim::Seconds;
using sim::TimePoint;

// ---------------------------------------------------------------------------
// PowerModel
// ---------------------------------------------------------------------------

TEST(PowerModelTest, CubicInFrequency)
{
    PowerModel model;
    const double p15 = model.CorePower(1.5, 0.0);
    const double p23 = model.CorePower(2.3, 0.0);
    const double ratio = (2.3 * 2.3 * 2.3) / (1.5 * 1.5 * 1.5);
    EXPECT_NEAR(p23 / p15, ratio, 1e-9);
}

TEST(PowerModelTest, UtilizationAddsDynamicPower)
{
    PowerModel model;
    EXPECT_GT(model.CorePower(1.5, 1.0), model.CorePower(1.5, 0.0));
    // Dynamic term is linear in utilization.
    const double idle = model.CorePower(1.5, 0.0);
    const double half = model.CorePower(1.5, 0.5);
    const double full = model.CorePower(1.5, 1.0);
    EXPECT_NEAR(full - half, half - idle, 1e-9);
}

TEST(PowerModelTest, UtilizationClamped)
{
    PowerModel model;
    EXPECT_DOUBLE_EQ(model.CorePower(1.5, 2.0),
                     model.CorePower(1.5, 1.0));
    EXPECT_DOUBLE_EQ(model.CorePower(1.5, -1.0),
                     model.CorePower(1.5, 0.0));
}

TEST(PowerModelTest, NodePowerIncludesBase)
{
    PowerModelConfig config;
    config.base_watts = 7.0;
    PowerModel model(config);
    EXPECT_NEAR(model.NodePower(1.5, 0.5, 4) -
                    4.0 * model.CorePower(1.5, 0.5),
                7.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Counter deltas
// ---------------------------------------------------------------------------

TEST(CounterDeltaTest, IpsAndAlpha)
{
    CpuCounterSnapshot a;
    a.at = TimePoint(0);
    CpuCounterSnapshot b;
    b.instructions = 3e9;
    b.total_cycles = 2e9;
    b.unhalted_cycles = 1e9;
    b.stalled_cycles = 0.25e9;
    b.at = Seconds(2);
    const CpuCounterDelta delta = Diff(a, b);
    EXPECT_DOUBLE_EQ(delta.Ips(), 1.5e9);
    EXPECT_DOUBLE_EQ(delta.Alpha(), 0.375);
}

TEST(CounterDeltaTest, ZeroSpanIsSafe)
{
    CpuCounterSnapshot a;
    const CpuCounterDelta delta = Diff(a, a);
    EXPECT_DOUBLE_EQ(delta.Ips(), 0.0);
    EXPECT_DOUBLE_EQ(delta.Alpha(), 0.0);
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

NodeConfig
SmallNode()
{
    NodeConfig config;
    config.total_cores = 8;
    return config;
}

TEST(NodeTest, RejectsBadConfig)
{
    NodeConfig config;
    config.total_cores = 0;
    EXPECT_THROW(Node{config}, std::invalid_argument);
    config = NodeConfig{};
    config.allowed_freqs_ghz.clear();
    EXPECT_THROW(Node{config}, std::invalid_argument);
}

TEST(NodeTest, AddVmValidatesCores)
{
    Node node(SmallNode());
    auto wl = std::make_shared<workloads::DiskSpeed>();
    EXPECT_THROW(node.AddVm(VmConfig{"x", 0}, wl), std::invalid_argument);
    EXPECT_THROW(node.AddVm(VmConfig{"x", 9}, wl), std::invalid_argument);
    EXPECT_THROW(node.AddVm(VmConfig{"x", 4}, nullptr),
                 std::invalid_argument);
    const VmId vm = node.AddVm(VmConfig{"x", 8}, wl);
    EXPECT_EQ(vm, 0u);
    // Node is now full.
    EXPECT_THROW(node.AddVm(VmConfig{"y", 1}, wl), std::invalid_argument);
}

TEST(NodeTest, FrequencyControlValidatesDvfsSet)
{
    Node node(SmallNode());
    const VmId vm = node.AddVm(VmConfig{"x", 4},
                               std::make_shared<workloads::DiskSpeed>());
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 1.5);
    node.SetVmFrequency(vm, 2.3);
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 2.3);
    EXPECT_THROW(node.SetVmFrequency(vm, 3.1), std::invalid_argument);
    node.ResetVmFrequency(vm);
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 1.5);
}

TEST(NodeTest, GrantCoresClampsToAllocation)
{
    Node node(SmallNode());
    const VmId vm = node.AddVm(VmConfig{"x", 4},
                               std::make_shared<workloads::BestEffort>());
    node.GrantCores(vm, 2);
    EXPECT_EQ(node.GrantedCores(vm), 2);
    node.GrantCores(vm, 100);
    EXPECT_EQ(node.GrantedCores(vm), 4);
    node.GrantCores(vm, -3);
    EXPECT_EQ(node.GrantedCores(vm), 0);
    node.ResetGrants();
    EXPECT_EQ(node.GrantedCores(vm), 4);
}

TEST(NodeTest, CountersAccumulateWithWorkload)
{
    Node node(SmallNode());
    const VmId vm = node.AddVm(VmConfig{"x", 4},
                               std::make_shared<workloads::BestEffort>());
    node.Advance(TimePoint(0), Seconds(1));
    const CpuCounterSnapshot snap = node.ReadCounters(vm);
    // BestEffort runs at util 1.0: 4 cores * 1.5 GHz * 1 s cycles.
    EXPECT_NEAR(snap.total_cycles, 4 * 1.5e9, 1e6);
    EXPECT_NEAR(snap.unhalted_cycles, 4 * 1.5e9, 1e6);
    EXPECT_GT(snap.instructions, 0.0);
}

TEST(NodeTest, IpsScalesWithFrequency)
{
    Node node_a(SmallNode());
    Node node_b(SmallNode());
    const VmId a = node_a.AddVm(VmConfig{"x", 4},
                                std::make_shared<workloads::BestEffort>());
    const VmId b = node_b.AddVm(VmConfig{"x", 4},
                                std::make_shared<workloads::BestEffort>());
    node_b.SetVmFrequency(b, 2.3);
    node_a.Advance(TimePoint(0), Seconds(1));
    node_b.Advance(TimePoint(0), Seconds(1));
    const auto delta_a = Diff(CpuCounterSnapshot{},
                              node_a.ReadCounters(a));
    const auto delta_b = Diff(CpuCounterSnapshot{},
                              node_b.ReadCounters(b));
    EXPECT_NEAR(delta_b.instructions / delta_a.instructions, 2.3 / 1.5,
                1e-6);
}

TEST(NodeTest, VcpuWaitAccumulatesWhenStarved)
{
    Node node(SmallNode());
    // BestEffort demands 64 cores; grant only 1 of 4.
    const VmId vm = node.AddVm(VmConfig{"x", 4},
                               std::make_shared<workloads::BestEffort>());
    node.GrantCores(vm, 1);
    node.Advance(TimePoint(0), Seconds(1));
    EXPECT_GT(node.VcpuWaitTime(vm), sim::Duration::zero());

    // Fully granted and demand within allocation: no extra wait.
    Node node2(SmallNode());
    const VmId vm2 = node2.AddVm(
        VmConfig{"x", 4}, std::make_shared<workloads::DiskSpeed>());
    node2.Advance(TimePoint(0), Seconds(1));
    EXPECT_EQ(node2.VcpuWaitTime(vm2), sim::Duration::zero());
}

TEST(NodeTest, EnergyIntegratesPower)
{
    Node node(SmallNode());
    node.AddVm(VmConfig{"x", 4},
               std::make_shared<workloads::BestEffort>());
    node.Advance(TimePoint(0), Seconds(1));
    const double e1 = node.EnergyJoules();
    node.Advance(Seconds(1), Seconds(1));
    EXPECT_NEAR(node.EnergyJoules(), 2.0 * e1, 1e-6);
    EXPECT_GT(node.LastPowerWatts(), 0.0);
}

TEST(NodeTest, HigherFrequencyDrawsMorePower)
{
    Node node_a(SmallNode());
    Node node_b(SmallNode());
    const VmId a = node_a.AddVm(VmConfig{"x", 4},
                                std::make_shared<workloads::DiskSpeed>());
    (void)a;
    const VmId b = node_b.AddVm(VmConfig{"x", 4},
                                std::make_shared<workloads::DiskSpeed>());
    node_b.SetVmFrequency(b, 2.3);
    node_a.Advance(TimePoint(0), Seconds(1));
    node_b.Advance(TimePoint(0), Seconds(1));
    EXPECT_GT(node_b.EnergyJoules(), 2.0 * node_a.EnergyJoules());
}

TEST(NodeTest, OutOfRangeVmThrows)
{
    Node node(SmallNode());
    EXPECT_THROW(node.ReadCounters(0), std::out_of_range);
    EXPECT_THROW(node.GrantCores(3, 1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// TieredMemory
// ---------------------------------------------------------------------------

TEST(TieredMemoryTest, RejectsBadConfig)
{
    EXPECT_THROW(TieredMemory(0, 1), std::invalid_argument);
    EXPECT_THROW(TieredMemory(4, 0), std::invalid_argument);
}

TEST(TieredMemoryTest, InitialPlacementFillsFastTierFirst)
{
    TieredMemory memory(8, 4);
    for (BatchId b = 0; b < 4; ++b) {
        EXPECT_EQ(memory.TierOf(b), Tier::kFast);
    }
    for (BatchId b = 4; b < 8; ++b) {
        EXPECT_EQ(memory.TierOf(b), Tier::kSlow);
    }
    EXPECT_EQ(memory.fast_tier_used(), 4u);
}

TEST(TieredMemoryTest, AccessAccountingByTier)
{
    TieredMemory memory(4, 2);
    memory.RecordAccess(0, Millis(1), 10);  // Fast.
    memory.RecordAccess(3, Millis(2), 5);   // Slow.
    EXPECT_EQ(memory.stats().local_accesses, 10u);
    EXPECT_EQ(memory.stats().remote_accesses, 5u);
    EXPECT_NEAR(memory.stats().RemoteFraction(), 5.0 / 15.0, 1e-12);
}

TEST(TieredMemoryTest, RemoteFractionEmptyIsZero)
{
    TieredMemory memory(2, 1);
    EXPECT_DOUBLE_EQ(memory.stats().RemoteFraction(), 0.0);
}

TEST(TieredMemoryTest, ScanReadsAndClearsBit)
{
    TieredMemory memory(2, 2);
    memory.RecordAccess(0, Millis(1));
    EXPECT_TRUE(memory.AccessBit(0));
    EXPECT_TRUE(memory.ScanAndReset(0));
    EXPECT_FALSE(memory.AccessBit(0));
    EXPECT_FALSE(memory.ScanAndReset(0));  // Now clear.
    EXPECT_EQ(memory.scans(), 2u);
    EXPECT_EQ(memory.bit_resets(), 1u);
    EXPECT_EQ(memory.tlb_flushes(), kPagesPerBatch);
}

TEST(TieredMemoryTest, ScanErrorInjection)
{
    TieredMemory memory(2, 2);
    memory.RecordAccess(0, Millis(1));
    memory.InjectScanErrors(1);
    bool error = false;
    EXPECT_FALSE(memory.ScanAndReset(0, &error));
    EXPECT_TRUE(error);
    // The bit survives an errored scan.
    EXPECT_TRUE(memory.AccessBit(0));
    EXPECT_TRUE(memory.ScanAndReset(0, &error));
    EXPECT_FALSE(error);
}

TEST(TieredMemoryTest, MigrationRespectsCapacity)
{
    TieredMemory memory(4, 2);
    EXPECT_FALSE(memory.FastTierHasRoom());
    memory.Migrate(0, Tier::kSlow);
    EXPECT_TRUE(memory.FastTierHasRoom());
    memory.Migrate(2, Tier::kFast);
    EXPECT_EQ(memory.TierOf(2), Tier::kFast);
    EXPECT_THROW(memory.Migrate(3, Tier::kFast), std::runtime_error);
    EXPECT_EQ(memory.migrations(), 2u);
}

TEST(TieredMemoryTest, MigrationToSameTierIsNoop)
{
    TieredMemory memory(2, 1);
    memory.Migrate(0, Tier::kFast);
    EXPECT_EQ(memory.migrations(), 0u);
}

TEST(TieredMemoryTest, LastAccessTracked)
{
    TieredMemory memory(2, 2);
    memory.RecordAccess(1, Millis(42));
    EXPECT_EQ(memory.LastAccess(1), Millis(42));
    EXPECT_EQ(memory.LastAccess(0), TimePoint(0));
}

TEST(TieredMemoryTest, ResetAccessStatsKeepsPlacement)
{
    TieredMemory memory(2, 1);
    memory.RecordAccess(1, Millis(1), 5);
    memory.ResetAccessStats();
    EXPECT_EQ(memory.stats().total(), 0u);
    EXPECT_EQ(memory.TierOf(1), Tier::kSlow);
}

TEST(TieredMemoryTest, OutOfRangeBatchThrows)
{
    TieredMemory memory(2, 1);
    EXPECT_THROW(memory.TierOf(2), std::out_of_range);
    EXPECT_THROW(memory.RecordAccess(5, Millis(0)), std::out_of_range);
}

}  // namespace
}  // namespace sol::node
