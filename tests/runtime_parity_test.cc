/**
 * @file
 * Differential parity harness: SimRuntime and ThreadedRuntime must
 * produce field-for-field identical RuntimeStats for the same scripted
 * agent. This is the permanent anti-drift regression gate for the
 * shared core::EpochEngine — any semantic divergence between the two
 * scheduling backends shows up as a counter mismatch here.
 *
 * Determinism on real threads comes from two pieces:
 *
 *   - core::ManualClock (core/manual_clock.h), a ClockPolicy whose
 *     SleepFor consumes explicitly
 *     granted ticks (one tick = one data_collect_interval) and only
 *     advances virtual time once the actuator has fully caught up with
 *     every delivered prediction (the "drain gate"). The clock is
 *     therefore frozen whenever the actuator reads it, so action,
 *     assessment, and halt timestamps are exact virtual instants.
 *   - blocking_actuator scenarios with never-expiring predictions, so
 *     actuator activity is purely prediction/assessment driven (the
 *     real-time timeout paths keep their per-runtime unit tests).
 *
 * Under the gate, each tick runs in lockstep: collect (+ deliver /
 * assess / act) fully completes in both backends before the next tick
 * starts, which makes even halted_time comparable to the nanosecond.
 * Scenarios cover valid/invalid/fault-injected samples, forced and
 * deadline short-circuits, failing model assessments (interception),
 * actuator-safeguard trips with recovery, and Stop/Start cycles —
 * including the two historical drift bugs: ThreadedRuntime missing
 * SetDataFault, and ThreadedRuntime forgetting a failed model
 * assessment across a restart.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "core/manual_clock.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "core/sim_runtime.h"
#include "core/threaded_runtime.h"
#include "sim/event_queue.h"

namespace sol::core {
namespace {

using sim::Millis;
using sim::Seconds;

/** One collect tick = one virtual data_collect_interval. */
constexpr sim::Duration kTick = Millis(10);

/** Sample value the installed data fault corrupts into an invalid
 *  reading; without the fault hook it validates fine. */
constexpr int kFaultMarker = 777;

/** One scripted collect tick. */
struct ScenarioTick {
    /** Sample returned by CollectData: negative = invalid,
     *  kFaultMarker = corrupted by the fault hook (if installed). */
    int sample = 1;
    /** Model requests ShortCircuitEpoch after this sample. */
    bool short_circuit = false;
};

/** A complete scripted run, executed identically on both runtimes. */
struct Scenario {
    std::vector<ScenarioTick> ticks;
    /** Result of the k-th AssessModel call (true beyond the script). */
    std::vector<bool> model_assessments;
    /** Result of the k-th AssessPerformance call (true beyond). */
    std::vector<bool> actuator_assessments;
    Schedule schedule;
    RuntimeOptions options;
    /** Stop + Start after this many ticks (0 = no restart). */
    std::size_t restart_after_tick = 0;
    /** Install the kFaultMarker-corrupting data fault on the runtime. */
    bool install_fault = false;
};

/** Baseline schedule: tick-paced collection, never-expiring epochs,
 *  blocking actuator (every parity scenario uses blocking mode so
 *  actuator activity is prediction/assessment driven, not timer
 *  driven). */
Schedule
ParitySchedule()
{
    Schedule schedule;
    schedule.data_per_epoch = 1;
    schedule.data_collect_interval = kTick;
    schedule.max_epoch_time = Seconds(100);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = Seconds(100);
    schedule.assess_actuator_interval = kTick;
    return schedule;
}

RuntimeOptions
ParityOptions(bool safeguard_enabled)
{
    RuntimeOptions options;
    options.blocking_actuator = true;
    options.disable_actuator_safeguard = !safeguard_enabled;
    return options;
}

/** Plays the scenario's tick script; thread-safe for the threaded
 *  runtime, deterministic on the event queue. */
class ScriptedModel : public Model<int, int>
{
  public:
    explicit ScriptedModel(const Scenario& scenario) : scenario_(scenario)
    {
    }

    int
    CollectData() override
    {
        const std::size_t i = position_.fetch_add(1);
        // The harnesses bound collection at the script length (event
        // horizon / granted ticks), so the fallback is defensive only.
        short_circuit_ = i < scenario_.ticks.size() &&
                         scenario_.ticks[i].short_circuit;
        return i < scenario_.ticks.size() ? scenario_.ticks[i].sample : 1;
    }

    bool ValidateData(const int& data) override { return data >= 0; }

    void
    CommitData(sim::TimePoint, const int&) override
    {
        commits_.fetch_add(1);
    }

    void UpdateModel() override {}

    Prediction<int>
    ModelPredict() override
    {
        return Prediction<int>{1, sim::kTimeInfinity, false};
    }

    Prediction<int>
    DefaultPredict() override
    {
        return Prediction<int>{0, sim::kTimeInfinity, true};
    }

    bool
    AssessModel() override
    {
        std::function<void()> barrier;
        {
            core::MutexLock lock(barrier_mutex_);
            barrier = assess_barrier_;
        }
        if (barrier) {
            barrier();  // Crash-consistency race: block mid-assessment.
        }
        const std::size_t k = assessments_.fetch_add(1);
        return k < scenario_.model_assessments.size()
                   ? scenario_.model_assessments[k]
                   : true;
    }

    bool ShortCircuitEpoch() override { return short_circuit_; }

    /** Hook run at AssessModel entry (threaded leg only); the race
     *  harness parks the model thread here while Stop() is joining. */
    void
    SetAssessBarrier(std::function<void()> barrier)
    {
        core::MutexLock lock(barrier_mutex_);
        assess_barrier_ = std::move(barrier);
    }

    std::size_t collects() const { return position_.load(); }
    std::uint64_t commits() const { return commits_.load(); }

  private:
    const Scenario& scenario_;
    std::atomic<std::size_t> position_{0};
    std::atomic<std::size_t> assessments_{0};
    std::atomic<std::uint64_t> commits_{0};
    bool short_circuit_ = false;  // Model-loop thread only.
    core::Mutex barrier_mutex_;
    std::function<void()> assess_barrier_ SOL_GUARDED_BY(barrier_mutex_);
};

class ScriptedActuator : public Actuator<int>
{
  public:
    explicit ScriptedActuator(const Scenario& scenario)
        : scenario_(scenario)
    {
    }

    void
    TakeAction(std::optional<Prediction<int>> pred) override
    {
        actions_.fetch_add(1);
        if (pred.has_value() && pred->is_default) {
            default_actions_.fetch_add(1);
        }
    }

    bool
    AssessPerformance() override
    {
        const std::size_t k = assessments_.fetch_add(1);
        return k < scenario_.actuator_assessments.size()
                   ? scenario_.actuator_assessments[k]
                   : true;
    }

    void Mitigate() override { mitigations_.fetch_add(1); }
    void CleanUp() override {}

    std::size_t assessments() const { return assessments_.load(); }

  private:
    const Scenario& scenario_;
    std::atomic<std::uint64_t> actions_{0};
    std::atomic<std::uint64_t> default_actions_{0};
    std::atomic<std::uint64_t> mitigations_{0};
    std::atomic<std::size_t> assessments_{0};
};

std::function<void(int&)>
MarkerFault()
{
    return [](int& data) {
        if (data == kFaultMarker) {
            data = -kFaultMarker;
        }
    };
}

using ParityThreadedRuntime = ThreadedRuntime<int, int, ManualClock>;

template <typename Condition>
bool
WaitUntil(Condition condition)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
        if (condition()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return condition();
}

/** Blocks until the threaded leg finished the phase: the model parked
 *  on the tick budget, every scripted collect ran, every due actuator
 *  assessment completed, and the actuator drained every delivery. */
void
Quiesce(ParityThreadedRuntime& runtime, const ScriptedModel& model,
        const ScriptedActuator& actuator, std::size_t expected_collects,
        std::size_t expected_assessments)
{
    const bool done = WaitUntil([&] {
        if (!runtime.clock().Parked() ||
            model.collects() != expected_collects ||
            actuator.assessments() != expected_assessments) {
            return false;
        }
        const RuntimeStats stats = runtime.stats();
        return stats.predictions_delivered ==
               stats.actions_with_prediction + stats.dropped_while_halted;
    });
    ASSERT_TRUE(done) << "threaded leg failed to quiesce: collects="
                      << model.collects() << "/" << expected_collects
                      << " assessments=" << actuator.assessments() << "/"
                      << expected_assessments;
}

RuntimeStats
RunSimLeg(const Scenario& scenario)
{
    sim::EventQueue queue;
    ScriptedModel model(scenario);
    ScriptedActuator actuator(scenario);
    SimRuntime<int, int> runtime(queue, model, actuator,
                                 scenario.schedule, scenario.options);
    if (scenario.install_fault) {
        runtime.SetDataFault(MarkerFault());
    }
    runtime.Start();
    if (scenario.restart_after_tick > 0) {
        queue.RunUntil(kTick * static_cast<std::int64_t>(
                                   scenario.restart_after_tick));
        runtime.Stop();
        runtime.Start();
    }
    queue.RunUntil(kTick *
                   static_cast<std::int64_t>(scenario.ticks.size()));
    runtime.Stop();
    return runtime.stats();
}

RuntimeStats
RunThreadedLeg(const Scenario& scenario)
{
    ScriptedModel model(scenario);
    ScriptedActuator actuator(scenario);
    ParityThreadedRuntime runtime(model, actuator, scenario.schedule,
                                  scenario.options);
    if (scenario.install_fault) {
        runtime.SetDataFault(MarkerFault());
    }
    const bool safeguard = !scenario.options.disable_actuator_safeguard;
    runtime.clock().SetGate([&runtime, safeguard] {
        const RuntimeStats stats = runtime.stats();
        // The actuator caught up when every delivery was either acted
        // on or dropped — and, with the safeguard on (one delivery and
        // one due assessment per tick), when the current tick's
        // assessment ran, so halt/resume instants are exact.
        return stats.predictions_delivered ==
                   stats.actions_with_prediction +
                       stats.dropped_while_halted &&
               (!safeguard || stats.actuator_assessments ==
                                  stats.predictions_delivered);
    });

    const std::size_t total = scenario.ticks.size();
    const std::size_t phase1 = scenario.restart_after_tick > 0
                                   ? scenario.restart_after_tick
                                   : total;
    runtime.Start();
    runtime.clock().GrantTicks(phase1);
    Quiesce(runtime, model, actuator, phase1, safeguard ? phase1 : 0);
    if (scenario.restart_after_tick > 0) {
        runtime.Stop();
        runtime.Start();
        runtime.clock().GrantTicks(total - phase1);
        Quiesce(runtime, model, actuator, total, safeguard ? total : 0);
    }
    runtime.Stop();
    return runtime.stats();
}

/** The parity assertion: every RuntimeStats field must match. */
void
ExpectStatsEqual(const RuntimeStats& sim, const RuntimeStats& threaded)
{
    EXPECT_EQ(sim.samples_collected, threaded.samples_collected);
    EXPECT_EQ(sim.invalid_samples, threaded.invalid_samples);
    EXPECT_EQ(sim.epochs, threaded.epochs);
    EXPECT_EQ(sim.model_updates, threaded.model_updates);
    EXPECT_EQ(sim.short_circuit_epochs, threaded.short_circuit_epochs);
    EXPECT_EQ(sim.model_assessments, threaded.model_assessments);
    EXPECT_EQ(sim.failed_assessments, threaded.failed_assessments);
    EXPECT_EQ(sim.intercepted_predictions,
              threaded.intercepted_predictions);
    EXPECT_EQ(sim.predictions_delivered, threaded.predictions_delivered);
    EXPECT_EQ(sim.default_predictions, threaded.default_predictions);
    EXPECT_EQ(sim.expired_predictions, threaded.expired_predictions);
    EXPECT_EQ(sim.dropped_while_halted, threaded.dropped_while_halted);
    EXPECT_EQ(sim.peak_queued_predictions,
              threaded.peak_queued_predictions);
    EXPECT_EQ(sim.actions_taken, threaded.actions_taken);
    EXPECT_EQ(sim.actions_with_prediction,
              threaded.actions_with_prediction);
    EXPECT_EQ(sim.actuator_timeouts, threaded.actuator_timeouts);
    EXPECT_EQ(sim.actuator_assessments, threaded.actuator_assessments);
    EXPECT_EQ(sim.safeguard_triggers, threaded.safeguard_triggers);
    EXPECT_EQ(sim.mitigations, threaded.mitigations);
    EXPECT_EQ(sim.halted_time.count(), threaded.halted_time.count());
}

std::vector<ScenarioTick>
ValidTicks(std::size_t n)
{
    return std::vector<ScenarioTick>(n, ScenarioTick{1, false});
}

TEST(RuntimeParityTest, CleanEpochsProduceIdenticalStats)
{
    Scenario scenario;
    scenario.ticks = ValidTicks(12);
    scenario.schedule = ParitySchedule();
    scenario.schedule.data_per_epoch = 3;
    scenario.schedule.assess_model_every_epochs = 2;
    scenario.options = ParityOptions(/*safeguard_enabled=*/false);

    const RuntimeStats sim = RunSimLeg(scenario);
    const RuntimeStats threaded = RunThreadedLeg(scenario);
    ExpectStatsEqual(sim, threaded);

    EXPECT_EQ(sim.samples_collected, 12u);
    EXPECT_EQ(sim.epochs, 4u);
    EXPECT_EQ(sim.model_updates, 4u);
    EXPECT_EQ(sim.model_assessments, 2u);  // Epochs 2 and 4.
    EXPECT_EQ(sim.predictions_delivered, 4u);
    EXPECT_EQ(sim.actions_with_prediction, 4u);
}

TEST(RuntimeParityTest, InvalidFaultedAndShortCircuitSamples)
{
    Scenario scenario;
    // Epoch 1: two valid samples -> complete.
    // Epoch 2: invalid, fault-corrupted, valid -> deadline (3 ticks).
    // Epoch 3: model-forced short circuit.
    // Epoch 4: two valid -> complete.
    // Epoch 5: fault-corrupted, valid, valid -> complete.
    // Epoch 6: one valid sample, still in flight at the horizon.
    scenario.ticks = {{1, false},           {1, false}, {-1, false},
                      {kFaultMarker, false}, {1, false}, {1, true},
                      {1, false},           {1, false}, {kFaultMarker, false},
                      {1, false},           {1, false}, {1, false}};
    scenario.install_fault = true;
    scenario.schedule = ParitySchedule();
    scenario.schedule.data_per_epoch = 2;
    scenario.schedule.max_epoch_time = 3 * kTick;
    scenario.options = ParityOptions(/*safeguard_enabled=*/false);

    const RuntimeStats sim = RunSimLeg(scenario);
    const RuntimeStats threaded = RunThreadedLeg(scenario);
    ExpectStatsEqual(sim, threaded);

    // The data-fault hook fired on both runtimes (the old
    // ThreadedRuntime had no SetDataFault at all).
    EXPECT_EQ(sim.invalid_samples, 3u);
    EXPECT_EQ(threaded.invalid_samples, 3u);
    EXPECT_EQ(sim.epochs, 5u);
    EXPECT_EQ(sim.model_updates, 3u);
    EXPECT_EQ(sim.short_circuit_epochs, 2u);
    EXPECT_EQ(sim.default_predictions, 2u);
}

TEST(RuntimeParityTest, FailingModelAssessmentIntercepts)
{
    Scenario scenario;
    scenario.ticks = ValidTicks(10);
    scenario.schedule = ParitySchedule();
    scenario.schedule.assess_model_every_epochs = 2;
    // Assessed at epochs 2, 4, 6, 8, 10: fail at 4 and 6, so epochs
    // 4-7 are intercepted and 8+ recover.
    scenario.model_assessments = {true, false, false, true, true};
    scenario.options = ParityOptions(/*safeguard_enabled=*/false);

    const RuntimeStats sim = RunSimLeg(scenario);
    const RuntimeStats threaded = RunThreadedLeg(scenario);
    ExpectStatsEqual(sim, threaded);

    EXPECT_EQ(sim.model_assessments, 5u);
    EXPECT_EQ(sim.failed_assessments, 2u);
    EXPECT_EQ(sim.intercepted_predictions, 4u);
    EXPECT_EQ(sim.default_predictions, 4u);
}

TEST(RuntimeParityTest, ActuatorSafeguardTripAndRecovery)
{
    Scenario scenario;
    scenario.ticks = ValidTicks(12);
    scenario.schedule = ParitySchedule();
    // One assessment per tick: trip at tick 4, recover at tick 9.
    scenario.actuator_assessments = {true,  true,  true, false, false,
                                     false, false, false, true,  true,
                                     true,  true};
    scenario.options = ParityOptions(/*safeguard_enabled=*/true);

    const RuntimeStats sim = RunSimLeg(scenario);
    const RuntimeStats threaded = RunThreadedLeg(scenario);
    ExpectStatsEqual(sim, threaded);

    EXPECT_EQ(sim.actuator_assessments, 12u);
    EXPECT_EQ(sim.safeguard_triggers, 1u);
    EXPECT_EQ(sim.mitigations, 5u);  // Failing ticks 4-8.
    // Tick 4's queued prediction is flushed by the trigger; ticks 5-9
    // deliver while halted and are dropped at delivery.
    EXPECT_EQ(sim.dropped_while_halted, 6u);
    EXPECT_EQ(sim.actions_taken, 6u);  // Ticks 1-3 and 10-12.
    // Halted from the tick-4 trip to the tick-9 recovery, exactly.
    EXPECT_EQ(sim.halted_time, 5 * kTick);
}

TEST(RuntimeParityTest, RestartMidEpochResetsOnlyEpochProgress)
{
    Scenario scenario;
    scenario.ticks = ValidTicks(10);
    scenario.schedule = ParitySchedule();
    scenario.schedule.data_per_epoch = 3;
    scenario.options = ParityOptions(/*safeguard_enabled=*/false);
    // Stop one sample into epoch 2; the partial epoch restarts from
    // scratch while counters and model state persist.
    scenario.restart_after_tick = 4;

    const RuntimeStats sim = RunSimLeg(scenario);
    const RuntimeStats threaded = RunThreadedLeg(scenario);
    ExpectStatsEqual(sim, threaded);

    EXPECT_EQ(sim.samples_collected, 10u);
    EXPECT_EQ(sim.epochs, 3u);  // Ticks 1-3, 5-7, 8-10.
    EXPECT_EQ(sim.model_updates, 3u);
    EXPECT_EQ(sim.short_circuit_epochs, 0u);
}

TEST(RuntimeParityTest, RestartPersistsFailedModelAssessment)
{
    Scenario scenario;
    scenario.ticks = ValidTicks(8);
    scenario.schedule = ParitySchedule();
    scenario.schedule.assess_model_every_epochs = 2;
    // Assessed at epochs 2 (ok), 4 (fail), 6 (fail), 8 (fail). The
    // restart lands right after the epoch-4 failure: epoch 5 runs
    // before any post-restart assessment, so it is intercepted only if
    // the failed assessment survived the restart — the exact state the
    // old ThreadedRuntime forgot (its model_ok was loop-local).
    scenario.model_assessments = {true, false, false, false};
    scenario.options = ParityOptions(/*safeguard_enabled=*/false);
    scenario.restart_after_tick = 4;

    const RuntimeStats sim = RunSimLeg(scenario);
    const RuntimeStats threaded = RunThreadedLeg(scenario);
    ExpectStatsEqual(sim, threaded);

    EXPECT_EQ(sim.failed_assessments, 3u);
    EXPECT_EQ(sim.intercepted_predictions, 5u);  // Epochs 4-8.
    EXPECT_EQ(threaded.intercepted_predictions, 5u);
}

TEST(RuntimeParityTest, StopRacingPendingModelAssessmentKeepsPrediction)
{
    // Crash-consistency: Stop() lands while the model thread is inside
    // the epoch-3 model assessment. The model loop has already passed
    // its running_ check, so it finishes the epoch and queues the
    // prediction after running_ flipped false — the actuator thread is
    // gone by then, so the delivery must survive in the engine across
    // the restart and be acted on at the restart instant, exactly like
    // the sim leg (where the same-instant wake acts before the stop).
    Scenario scenario;
    scenario.ticks = ValidTicks(6);
    scenario.schedule = ParitySchedule();
    scenario.options = ParityOptions(/*safeguard_enabled=*/false);
    scenario.restart_after_tick = 3;

    const RuntimeStats sim = RunSimLeg(scenario);

    ScriptedModel model(scenario);
    ScriptedActuator actuator(scenario);
    ParityThreadedRuntime runtime(model, actuator, scenario.schedule,
                                  scenario.options);
    runtime.clock().SetGate([&runtime] {
        const RuntimeStats stats = runtime.stats();
        return stats.predictions_delivered ==
               stats.actions_with_prediction + stats.dropped_while_halted;
    });

    runtime.Start();
    runtime.clock().GrantTicks(2);
    Quiesce(runtime, model, actuator, 2, 0);

    std::atomic<bool> in_assessment{false};
    std::atomic<bool> release{false};
    model.SetAssessBarrier([&] {
        in_assessment.store(true);
        while (!release.load()) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    });
    runtime.clock().GrantTicks(1);
    ASSERT_TRUE(WaitUntil([&] { return in_assessment.load(); }));

    // Stop() joins the model thread, which is parked in AssessModel.
    std::thread stopper([&] { runtime.Stop(); });
    ASSERT_TRUE(WaitUntil([&] { return !runtime.running(); }));
    release.store(true);
    stopper.join();
    model.SetAssessBarrier(nullptr);

    // The epoch-3 delivery happened after running_ flipped false and
    // nobody acted on it: it must be queued, not lost.
    EXPECT_EQ(runtime.stats().predictions_delivered, 3u);
    EXPECT_EQ(runtime.stats().actions_with_prediction, 2u);
    EXPECT_EQ(runtime.queued_predictions(), 1u);

    runtime.Start();
    runtime.clock().GrantTicks(3);
    Quiesce(runtime, model, actuator, 6, 0);
    runtime.Stop();

    const RuntimeStats threaded = runtime.stats();
    ExpectStatsEqual(sim, threaded);
    EXPECT_EQ(threaded.predictions_delivered,
              threaded.actions_with_prediction);
    EXPECT_EQ(threaded.samples_collected, 6u);
    EXPECT_EQ(threaded.epochs, 6u);
}

TEST(RuntimeParityTest, RestartWhileHaltedKeepsSafeguardEngaged)
{
    Scenario scenario;
    scenario.ticks = ValidTicks(10);
    scenario.schedule = ParitySchedule();
    // Trip at tick 3; restart after tick 5 (still halted); recover at
    // tick 8. The halt and its accounting must span the restart.
    scenario.actuator_assessments = {true, true,  false, false, false,
                                     false, false, true,  true,  true};
    scenario.options = ParityOptions(/*safeguard_enabled=*/true);
    scenario.restart_after_tick = 5;

    const RuntimeStats sim = RunSimLeg(scenario);
    const RuntimeStats threaded = RunThreadedLeg(scenario);
    ExpectStatsEqual(sim, threaded);

    EXPECT_EQ(sim.actuator_assessments, 10u);
    EXPECT_EQ(sim.safeguard_triggers, 1u);  // The restart adds none.
    EXPECT_EQ(sim.mitigations, 5u);         // Failing ticks 3-7.
    EXPECT_EQ(sim.dropped_while_halted, 6u);  // Ticks 3-8.
    EXPECT_EQ(sim.actions_taken, 4u);         // Ticks 1-2 and 9-10.
    // Halted tick 3 -> tick 8; the stopped span [5, 5] adds nothing.
    EXPECT_EQ(sim.halted_time, 5 * kTick);
}

}  // namespace
}  // namespace sol::core
