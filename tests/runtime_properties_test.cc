/**
 * @file
 * Property-style parameterized sweeps over the SimRuntime: invariants
 * that must hold for any valid schedule and failure pattern.
 */
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/sim_runtime.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace sol::core {
namespace {

using sim::EventQueue;
using sim::Millis;
using sim::Seconds;

/** Simple counting agent reused across the sweeps. */
class CountingModel : public Model<int, int>
{
  public:
    explicit CountingModel(const sim::Clock& clock, double invalid_prob,
                           std::uint64_t seed)
        : clock_(clock), invalid_prob_(invalid_prob), rng_(seed)
    {
    }

    int
    CollectData() override
    {
        ++collects;
        return rng_.NextBool(invalid_prob_) ? -1 : 1;
    }

    bool
    ValidateData(const int& data) override
    {
        return data >= 0;
    }

    void
    CommitData(sim::TimePoint, const int&) override
    {
        ++commits;
    }

    void
    UpdateModel() override
    {
        ++updates;
    }

    Prediction<int>
    ModelPredict() override
    {
        return MakePrediction(1, clock_.Now(), Seconds(1));
    }

    Prediction<int>
    DefaultPredict() override
    {
        return MakeDefaultPrediction(0, clock_.Now(), Seconds(1));
    }

    bool
    AssessModel() override
    {
        return true;
    }

    const sim::Clock& clock_;
    double invalid_prob_;
    sim::Rng rng_;
    int collects = 0;
    int commits = 0;
    int updates = 0;
};

class CountingActuator : public Actuator<int>
{
  public:
    void
    TakeAction(std::optional<Prediction<int>> pred) override
    {
        ++actions;
        with_pred += pred.has_value() ? 1 : 0;
    }

    bool
    AssessPerformance() override
    {
        return true;
    }

    void
    Mitigate() override
    {
    }

    void
    CleanUp() override
    {
    }

    int actions = 0;
    int with_pred = 0;
};

// Sweep over (data_per_epoch, collect_interval_ms, invalid_prob).
using SweepParam = std::tuple<int, int, double>;

class RuntimeSweepTest : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(RuntimeSweepTest, InvariantsHoldUnderAnyConfiguration)
{
    const auto [per_epoch, interval_ms, invalid_prob] = GetParam();
    EventQueue queue;
    CountingModel model(queue, invalid_prob, 99);
    CountingActuator actuator;

    Schedule schedule;
    schedule.data_per_epoch = per_epoch;
    schedule.data_collect_interval = Millis(interval_ms);
    schedule.max_epoch_time = Millis(interval_ms * per_epoch * 3);
    schedule.max_actuation_delay = Millis(interval_ms * per_epoch * 5);
    schedule.assess_actuator_interval = Millis(50);

    SimRuntime<int, int> runtime(queue, model, actuator, schedule);
    runtime.Start();
    queue.RunUntil(Seconds(20));
    runtime.Stop();

    const RuntimeStats& stats = runtime.stats();

    // Every epoch ends in exactly one of: update+predict or default.
    EXPECT_EQ(stats.epochs,
              stats.model_updates + stats.short_circuit_epochs);

    // Every delivered prediction came from an epoch.
    EXPECT_EQ(stats.predictions_delivered, stats.epochs);

    // Every full epoch commits exactly data_per_epoch samples; epochs
    // that short-circuited at the deadline (and the in-flight epoch at
    // Stop) may add up to per_epoch - 1 partial commits each.
    const int full_commits =
        static_cast<int>(stats.model_updates) * per_epoch;
    EXPECT_GE(model.commits, full_commits);
    EXPECT_LE(model.commits,
              full_commits +
                  static_cast<int>(stats.short_circuit_epochs + 1) *
                      (per_epoch - 1));

    // Collect accounting: every collect is either committed or invalid.
    EXPECT_EQ(static_cast<std::uint64_t>(model.collects),
              static_cast<std::uint64_t>(model.commits) +
                  stats.invalid_samples);

    // Actions = prediction-driven + timeout fallbacks.
    EXPECT_EQ(stats.actions_taken,
              stats.actions_with_prediction + stats.actuator_timeouts);

    // With no safeguard failures, nothing was halted or mitigated.
    EXPECT_EQ(stats.safeguard_triggers, 0u);
    EXPECT_EQ(stats.mitigations, 0u);

    // Progress: something must have happened in 20 s.
    EXPECT_GT(stats.epochs, 0u);
    EXPECT_GT(stats.actions_taken, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, RuntimeSweepTest,
    ::testing::Values(SweepParam{1, 10, 0.0}, SweepParam{4, 10, 0.0},
                      SweepParam{10, 5, 0.0}, SweepParam{4, 10, 0.2},
                      SweepParam{4, 10, 0.5}, SweepParam{10, 5, 0.3},
                      SweepParam{2, 50, 0.1}, SweepParam{25, 2, 0.05}));

// Sweep over stall patterns: the actuator must keep acting regardless.
class StallSweepTest : public ::testing::TestWithParam<int>
{
};

TEST_P(StallSweepTest, ActuatorKeepsActingThroughStalls)
{
    const int stall_ms = GetParam();
    EventQueue queue;
    CountingModel model(queue, 0.0, 7);
    CountingActuator actuator;

    Schedule schedule;
    schedule.data_per_epoch = 4;
    schedule.data_collect_interval = Millis(10);
    schedule.max_epoch_time = Millis(100);
    schedule.max_actuation_delay = Millis(100);
    schedule.assess_actuator_interval = Millis(50);

    SimRuntime<int, int> runtime(queue, model, actuator, schedule);
    runtime.Start();

    // Stall the model every second.
    for (int t = 1; t <= 10; ++t) {
        queue.ScheduleAt(Seconds(t), [&runtime, stall_ms] {
            runtime.StallModelFor(Millis(stall_ms));
        });
    }
    queue.RunUntil(Seconds(12));
    runtime.Stop();

    // The non-blocking design guarantees an upper bound on the time
    // between actions: in 12 s with a 100 ms max delay, at least ~100
    // actions even if the model was stalled the whole time.
    EXPECT_GT(actuator.actions, 100);
    if (stall_ms > 200) {
        // Long stalls force timeout actions.
        EXPECT_GT(runtime.stats().actuator_timeouts, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Stalls, StallSweepTest,
                         ::testing::Values(50, 200, 500, 900));

}  // namespace
}  // namespace sol::core
