/**
 * @file
 * Property-style parameterized sweeps over the SimRuntime: invariants
 * that must hold for any valid schedule and failure pattern.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "core/sim_runtime.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace sol::core {
namespace {

using sim::EventQueue;
using sim::Millis;
using sim::Seconds;

/** Simple counting agent reused across the sweeps. */
class CountingModel : public Model<int, int>
{
  public:
    explicit CountingModel(const sim::Clock& clock, double invalid_prob,
                           std::uint64_t seed)
        : clock_(clock), invalid_prob_(invalid_prob), rng_(seed)
    {
    }

    int
    CollectData() override
    {
        ++collects;
        return rng_.NextBool(invalid_prob_) ? -1 : 1;
    }

    bool
    ValidateData(const int& data) override
    {
        return data >= 0;
    }

    void
    CommitData(sim::TimePoint, const int&) override
    {
        ++commits;
    }

    void
    UpdateModel() override
    {
        ++updates;
    }

    Prediction<int>
    ModelPredict() override
    {
        return MakePrediction(1, clock_.Now(), Seconds(1));
    }

    Prediction<int>
    DefaultPredict() override
    {
        return MakeDefaultPrediction(0, clock_.Now(), Seconds(1));
    }

    bool
    AssessModel() override
    {
        return true;
    }

    const sim::Clock& clock_;
    double invalid_prob_;
    sim::Rng rng_;
    int collects = 0;
    int commits = 0;
    int updates = 0;
};

class CountingActuator : public Actuator<int>
{
  public:
    void
    TakeAction(std::optional<Prediction<int>> pred) override
    {
        ++actions;
        with_pred += pred.has_value() ? 1 : 0;
    }

    bool
    AssessPerformance() override
    {
        return true;
    }

    void
    Mitigate() override
    {
    }

    void
    CleanUp() override
    {
    }

    int actions = 0;
    int with_pred = 0;
};

// Sweep over (data_per_epoch, collect_interval_ms, invalid_prob).
using SweepParam = std::tuple<int, int, double>;

class RuntimeSweepTest : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(RuntimeSweepTest, InvariantsHoldUnderAnyConfiguration)
{
    const auto [per_epoch, interval_ms, invalid_prob] = GetParam();
    EventQueue queue;
    CountingModel model(queue, invalid_prob, 99);
    CountingActuator actuator;

    Schedule schedule;
    schedule.data_per_epoch = per_epoch;
    schedule.data_collect_interval = Millis(interval_ms);
    schedule.max_epoch_time = Millis(interval_ms * per_epoch * 3);
    schedule.max_actuation_delay = Millis(interval_ms * per_epoch * 5);
    schedule.assess_actuator_interval = Millis(50);

    SimRuntime<int, int> runtime(queue, model, actuator, schedule);
    runtime.Start();
    queue.RunUntil(Seconds(20));
    runtime.Stop();

    const RuntimeStats& stats = runtime.stats();

    // Every epoch ends in exactly one of: update+predict or default.
    EXPECT_EQ(stats.epochs,
              stats.model_updates + stats.short_circuit_epochs);

    // Every delivered prediction came from an epoch.
    EXPECT_EQ(stats.predictions_delivered, stats.epochs);

    // Every full epoch commits exactly data_per_epoch samples; epochs
    // that short-circuited at the deadline (and the in-flight epoch at
    // Stop) may add up to per_epoch - 1 partial commits each.
    const int full_commits =
        static_cast<int>(stats.model_updates) * per_epoch;
    EXPECT_GE(model.commits, full_commits);
    EXPECT_LE(model.commits,
              full_commits +
                  static_cast<int>(stats.short_circuit_epochs + 1) *
                      (per_epoch - 1));

    // Collect accounting: every collect is either committed or invalid.
    EXPECT_EQ(static_cast<std::uint64_t>(model.collects),
              static_cast<std::uint64_t>(model.commits) +
                  stats.invalid_samples);

    // Actions = prediction-driven + timeout fallbacks.
    EXPECT_EQ(stats.actions_taken,
              stats.actions_with_prediction + stats.actuator_timeouts);

    // With no safeguard failures, nothing was halted or mitigated.
    EXPECT_EQ(stats.safeguard_triggers, 0u);
    EXPECT_EQ(stats.mitigations, 0u);

    // Progress: something must have happened in 20 s.
    EXPECT_GT(stats.epochs, 0u);
    EXPECT_GT(stats.actions_taken, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, RuntimeSweepTest,
    ::testing::Values(SweepParam{1, 10, 0.0}, SweepParam{4, 10, 0.0},
                      SweepParam{10, 5, 0.0}, SweepParam{4, 10, 0.2},
                      SweepParam{4, 10, 0.5}, SweepParam{10, 5, 0.3},
                      SweepParam{2, 50, 0.1}, SweepParam{25, 2, 0.05}));

// Sweep over stall patterns: the actuator must keep acting regardless.
class StallSweepTest : public ::testing::TestWithParam<int>
{
};

TEST_P(StallSweepTest, ActuatorKeepsActingThroughStalls)
{
    const int stall_ms = GetParam();
    EventQueue queue;
    CountingModel model(queue, 0.0, 7);
    CountingActuator actuator;

    Schedule schedule;
    schedule.data_per_epoch = 4;
    schedule.data_collect_interval = Millis(10);
    schedule.max_epoch_time = Millis(100);
    schedule.max_actuation_delay = Millis(100);
    schedule.assess_actuator_interval = Millis(50);

    SimRuntime<int, int> runtime(queue, model, actuator, schedule);
    runtime.Start();

    // Stall the model every second.
    for (int t = 1; t <= 10; ++t) {
        queue.ScheduleAt(Seconds(t), [&runtime, stall_ms] {
            runtime.StallModelFor(Millis(stall_ms));
        });
    }
    queue.RunUntil(Seconds(12));
    runtime.Stop();

    // The non-blocking design guarantees an upper bound on the time
    // between actions: in 12 s with a 100 ms max delay, at least ~100
    // actions even if the model was stalled the whole time.
    EXPECT_GT(actuator.actions, 100);
    if (stall_ms > 200) {
        // Long stalls force timeout actions.
        EXPECT_GT(runtime.stats().actuator_timeouts, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Stalls, StallSweepTest,
                         ::testing::Values(50, 200, 500, 900));

// --- EventQueue differential test --------------------------------------
//
// The arena-backed pairing heap must be observationally identical to
// the obviously-correct reference: a sorted vector popping the strict
// (time, insertion-sequence) minimum. A long seeded stream of mixed
// schedule/cancel/step/run-until operations is applied to both; any
// divergence in execution order, clock position, or counter accounting
// fails. Cancels target random live handles (and occasionally stale
// ones, which must be no-ops on both sides).

/** Reference model: the queue semantics in their simplest form. */
class ReferenceQueue
{
  public:
    void
    Schedule(std::int64_t when, int id)
    {
        pending_.push_back({when, next_seq_++, id});
        ++scheduled_;
    }

    /** True when the id was still pending (mirrors a cancel taking
     *  effect); stale ids are no-ops. */
    bool
    Cancel(int id)
    {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->id == id) {
                pending_.erase(it);
                ++cancelled_;
                return true;
            }
        }
        return false;
    }

    bool
    Step()
    {
        const auto it = Earliest();
        if (it == pending_.end()) {
            return false;
        }
        now_ = std::max(now_, it->when);
        executed_order_.push_back(it->id);
        pending_.erase(it);
        return true;
    }

    void
    RunUntil(std::int64_t horizon)
    {
        while (true) {
            const auto it = Earliest();
            if (it == pending_.end() || it->when > horizon) {
                break;
            }
            now_ = std::max(now_, it->when);
            executed_order_.push_back(it->id);
            pending_.erase(it);
        }
        now_ = std::max(now_, horizon);
    }

    std::int64_t now() const { return now_; }
    std::size_t pending() const { return pending_.size(); }
    std::uint64_t scheduled() const { return scheduled_; }
    std::uint64_t cancelled() const { return cancelled_; }
    const std::vector<int>& executed_order() const
    {
        return executed_order_;
    }

  private:
    struct Entry {
        std::int64_t when;
        std::uint64_t seq;
        int id;
    };

    std::vector<Entry>::iterator
    Earliest()
    {
        auto best = pending_.end();
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (best == pending_.end() || it->when < best->when ||
                (it->when == best->when && it->seq < best->seq)) {
                best = it;
            }
        }
        return best;
    }

    std::vector<Entry> pending_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t cancelled_ = 0;
    std::int64_t now_ = 0;
    std::vector<int> executed_order_;
};

/** Runs the seeded op stream against both queues, checking lockstep
 *  (void so ASSERT_* can bail; results land in the out-params). */
void
RunDifferential(std::uint64_t seed, int num_ops,
                std::vector<int>* order_out, std::uint64_t* hash_out)
{
    EventQueue queue;
    ReferenceQueue reference;
    sim::Rng rng(seed);

    std::vector<int> executed_order;
    std::vector<std::pair<int, sim::EventHandle>> handles;
    int next_id = 0;

    for (int op = 0; op < num_ops; ++op) {
        const std::uint64_t choice = rng.NextBelow(100);
        if (choice < 55) {
            // Schedule at a random offset; 1-in-5 at the current
            // instant (same-instant FIFO is the subtle invariant).
            const std::int64_t offset =
                rng.NextBool(0.2) ? 0 : rng.NextInRange(0, 5000);
            const std::int64_t when = queue.Now().count() + offset;
            const int id = next_id++;
            sim::EventHandle handle = queue.ScheduleAt(
                sim::TimePoint(sim::Nanos(when)),
                [id, &executed_order] { executed_order.push_back(id); });
            reference.Schedule(when, id);
            handles.emplace_back(id, std::move(handle));
        } else if (choice < 70) {
            // Cancel a random handle — often live, sometimes already
            // fired or cancelled (must be a no-op on both sides).
            if (!handles.empty()) {
                auto& [id, handle] =
                    handles[rng.NextBelow(handles.size())];
                const bool was_pending = handle.pending();
                handle.Cancel();
                const bool ref_effect = reference.Cancel(id);
                ASSERT_EQ(was_pending, ref_effect)
                    << "handle/reference liveness disagreed for " << id;
            }
        } else if (choice < 85) {
            const bool stepped = queue.Step();
            const bool ref_stepped = reference.Step();
            ASSERT_EQ(stepped, ref_stepped) << "Step at op " << op;
        } else {
            const std::int64_t horizon =
                queue.Now().count() + rng.NextInRange(0, 3000);
            queue.RunUntil(sim::TimePoint(sim::Nanos(horizon)));
            reference.RunUntil(horizon);
        }

        ASSERT_EQ(queue.Now().count(), reference.now())
            << "clocks diverged at op " << op;
        ASSERT_EQ(queue.pending(), reference.pending())
            << "pending diverged at op " << op;
        ASSERT_EQ(executed_order.size(),
                  reference.executed_order().size())
            << "executed count diverged at op " << op;
    }

    // Drain both and compare the complete execution order.
    while (queue.Step()) {
    }
    while (reference.Step()) {
    }
    EXPECT_EQ(executed_order, reference.executed_order());

    const sim::EventQueueStats stats = queue.stats();
    EXPECT_EQ(stats.scheduled, reference.scheduled());
    EXPECT_EQ(stats.cancelled, reference.cancelled());
    EXPECT_EQ(stats.executed, executed_order.size());
    EXPECT_EQ(stats.pending, 0u);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.scheduled,
              stats.executed + stats.cancelled + stats.pending);

    *order_out = executed_order;
    *hash_out = queue.trace_hash();
}

class EventQueueDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EventQueueDifferentialTest, MatchesSortedVectorReference)
{
    const std::uint64_t seed = GetParam();
    std::vector<int> order;
    std::uint64_t hash = 0;
    RunDifferential(seed, 10'000, &order, &hash);
    if (testing::Test::HasFatalFailure()) {
        return;
    }
    EXPECT_FALSE(order.empty());

    // The same seed must replay the same order and trace fingerprint.
    std::vector<int> order2;
    std::uint64_t hash2 = 0;
    RunDifferential(seed, 10'000, &order2, &hash2);
    EXPECT_EQ(order, order2);
    EXPECT_EQ(hash, hash2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDifferentialTest,
                         ::testing::Values(1u, 42u, 0xdeadbeefu));

}  // namespace
}  // namespace sol::core
