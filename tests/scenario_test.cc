/**
 * @file
 * Behavior-determinism gates for the trace-driven scenario library.
 *
 * Three properties, per scenario:
 *   1. Repeatability — the same scenario replays an identical trace
 *      hash and behavior counter vector run over run.
 *   2. Thread-count invariance — 1, 2, and 8 worker threads produce
 *      byte-identical behavior (the property the committed baselines
 *      in bench/baselines/ lean on).
 *   3. Signature — each adversarial scenario actually exhibits the
 *      pathology it advertises (invalid-data spike, safeguard cascade,
 *      model-degradation interceptions) relative to the steady-state
 *      control, and the flat control itself is bit-identical to an
 *      entirely unmodulated fleet.
 *   4. Health — the sampled fleet health timeline and alert transition
 *      log are part of the determinism contract, each scenario fires
 *      its expected_alerts signature at the committed smoke shape, and
 *      the steady_state control stays silent.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fleet/fleet_runner.h"
#include "workloads/scenarios.h"

namespace sol::workloads {
namespace {

/** Copy with a reduced smoke shape: 8 single-node shards so an
 *  8-thread run really uses 8 workers, and a short horizon to keep the
 *  sweep cheap under TSan. */
Scenario
Shrunk(const Scenario& scenario)
{
    Scenario copy = scenario;
    copy.smoke = ScenarioShape{8, 4, sim::Millis(500)};
    return copy;
}

ScenarioResult
RunSmoke(const Scenario& scenario, std::size_t threads)
{
    ScenarioOptions options;
    options.num_threads = threads;
    options.smoke = true;
    return RunScenario(scenario, options);
}

TEST(ScenarioLibrary, ShapeAndLookup)
{
    const auto& library = ScenarioLibrary();
    ASSERT_GE(library.size(), 6u);

    std::size_t adversarial = 0;
    std::set<std::string> names;
    for (const Scenario& scenario : library) {
        EXPECT_TRUE(names.insert(scenario.name).second)
            << "duplicate scenario name " << scenario.name;
        EXPECT_FALSE(scenario.summary.empty()) << scenario.name;
        EXPECT_TRUE(scenario.build_driver != nullptr) << scenario.name;
        EXPECT_EQ(FindScenario(scenario.name), &scenario);
        adversarial += scenario.adversarial ? 1 : 0;
    }
    EXPECT_GE(adversarial, 3u);
    EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

class ScenarioDeterminismTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioDeterminismTest, BehaviorIdenticalAcrossRunsAndThreads)
{
    const Scenario* scenario = FindScenario(GetParam());
    ASSERT_NE(scenario, nullptr);
    const Scenario shrunk = Shrunk(*scenario);

    const ScenarioResult base = RunSmoke(shrunk, 1);

    // Sanity on the base run before comparing anything against it.
    EXPECT_EQ(base.Counter("agents"),
              shrunk.smoke.num_nodes *
                  (shrunk.smoke.synthetic_agents + 4));
    EXPECT_GT(base.total_events, 0u);
    EXPECT_EQ(base.Counter("queue_dropped"), 0u);
    EXPECT_EQ(base.Counter("epochs"),
              base.Counter("model_updates") +
                  base.Counter("short_circuit_epochs"));
    EXPECT_FALSE(base.behavior.empty());

    EXPECT_GT(base.health_samples, 0u);
    EXPECT_NE(base.timeline_hash, 0u);
    EXPECT_FALSE(base.health_json.empty());

    const ScenarioResult again = RunSmoke(shrunk, 1);
    EXPECT_TRUE(SameBehavior(base, again))
        << "repeat run diverged for " << shrunk.name;
    EXPECT_TRUE(SameHealth(base, again))
        << "repeat health timeline diverged for " << shrunk.name;
    EXPECT_EQ(base.health_json, again.health_json);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const ScenarioResult run = RunSmoke(shrunk, threads);
        EXPECT_TRUE(SameBehavior(base, run))
            << shrunk.name << " diverged at " << threads << " threads";
        EXPECT_TRUE(SameHealth(base, run))
            << shrunk.name << " health diverged at " << threads
            << " threads";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Library, ScenarioDeterminismTest,
    ::testing::Values("steady_state", "zipf_hotspots", "diurnal_cycle",
                      "flash_crowd", "invalid_storm",
                      "cascading_safeguards", "model_degradation"));

TEST(ScenarioBehavior, SteadyStateEqualsDriverlessFleet)
{
    // The flat-demand control must be a no-op modulation: the exact
    // trace an unmodulated fleet of the same shape and seed produces.
    const Scenario* scenario = FindScenario("steady_state");
    ASSERT_NE(scenario, nullptr);
    const ScenarioResult driven = RunSmoke(*scenario, 1);

    fleet::FleetConfig fleet;
    fleet.num_nodes = scenario->smoke.num_nodes;
    fleet.num_shards = scenario->smoke.num_nodes;
    fleet.num_threads = 1;
    fleet.base_seed = scenario->base_seed;
    fleet.window = sim::Millis(100);
    fleet.queue_pending_limit = std::size_t{1} << 20;
    fleet.node.synthetic_agents = scenario->smoke.synthetic_agents;
    fleet::ShardedFleetRunner runner(fleet);
    runner.Run(scenario->smoke.horizon);
    runner.Stop();

    EXPECT_EQ(driven.fleet_trace_hash, runner.fleet_trace_hash());
    EXPECT_EQ(driven.total_events, runner.total_executed());
}

TEST(ScenarioBehavior, AdversarialSignaturesShowAgainstControl)
{
    // Full smoke shape: the committed-baseline mode, where each storm
    // has room to express its pathology.
    const ScenarioResult steady =
        RunSmoke(*FindScenario("steady_state"), 1);
    const ScenarioResult zipf =
        RunSmoke(*FindScenario("zipf_hotspots"), 1);
    const ScenarioResult storm =
        RunSmoke(*FindScenario("invalid_storm"), 1);
    const ScenarioResult cascade =
        RunSmoke(*FindScenario("cascading_safeguards"), 1);
    const ScenarioResult degraded =
        RunSmoke(*FindScenario("model_degradation"), 1);

    // Zipf: cold tenants collect 3x slower, so the fleet completes
    // far fewer epochs than the uniform control.
    EXPECT_LT(zipf.Counter("epochs"), steady.Counter("epochs"));

    // Invalid-data storm: more rejected samples and more epochs dying
    // short of their data target than the control ever shows.
    EXPECT_GT(storm.Counter("invalid_samples"),
              steady.Counter("invalid_samples"));
    EXPECT_GT(storm.Counter("short_circuit_epochs"),
              steady.Counter("short_circuit_epochs"));

    // Safeguard cascade: actuator assessments fail across half the
    // fleet, so trips, mitigations, and halted time all spike.
    EXPECT_GT(cascade.Counter("safeguard_triggers"),
              steady.Counter("safeguard_triggers"));
    EXPECT_GT(cascade.Counter("mitigations"),
              steady.Counter("mitigations"));
    EXPECT_GT(cascade.Counter("halted_ns"), steady.Counter("halted_ns"));

    // Model degradation: the model safeguard catches the bad models —
    // interceptions track failed assessments, and both dwarf the
    // control's background rate.
    EXPECT_GT(degraded.Counter("failed_assessments"),
              3 * steady.Counter("failed_assessments"));
    EXPECT_EQ(degraded.Counter("failed_assessments"),
              degraded.Counter("intercepted_predictions"));
}

TEST(ScenarioHealth, AlertSignaturesMatchAtCommittedSmokeShape)
{
    // The committed smoke shape is where the default alert pack is
    // calibrated: every scenario's expected_alerts must fire, nothing
    // may fire on the silent control, and the health JSON must carry
    // the full transition log the HEALTH goldens lock.
    for (const Scenario& scenario : ScenarioLibrary()) {
        const ScenarioResult run = RunSmoke(scenario, 1);
        const std::vector<std::string> fired = run.FiredRules();
        for (const std::string& rule : scenario.expected_alerts) {
            EXPECT_NE(std::find(fired.begin(), fired.end(), rule),
                      fired.end())
                << scenario.name << " did not fire " << rule;
        }
        if (scenario.expect_silent) {
            EXPECT_TRUE(run.alerts.empty())
                << scenario.name << " must stay silent but fired "
                << run.alerts.size() << " transitions";
        }
        for (const telemetry::AlertEvent& event : run.alerts) {
            EXPECT_NE(run.health_json.find("\"" + event.rule + "\""),
                      std::string::npos)
                << event.rule << " missing from health report";
        }
    }
}

TEST(ScenarioHealth, DisablingHealthKeepsBehaviorByteIdentical)
{
    // Observe-only end to end: the sampler and alert engine must not
    // perturb the simulation they watch.
    const Scenario* scenario = FindScenario("cascading_safeguards");
    ASSERT_NE(scenario, nullptr);
    const Scenario shrunk = Shrunk(*scenario);

    ScenarioOptions with;
    with.smoke = true;
    ScenarioOptions without;
    without.smoke = true;
    without.health = false;

    const ScenarioResult on = RunScenario(shrunk, with);
    const ScenarioResult off = RunScenario(shrunk, without);
    EXPECT_TRUE(SameBehavior(on, off));
    EXPECT_EQ(off.health_samples, 0u);
    EXPECT_EQ(off.timeline_hash, 0u);
    EXPECT_TRUE(off.health_json.empty());
}

}  // namespace
}  // namespace sol::workloads
