/**
 * @file
 * Tests for the simulation substrate: time, RNG, event queue, samplers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/samplers.h"
#include "sim/time.h"

namespace sol::sim {
namespace {

// ---------------------------------------------------------------------------
// Time helpers
// ---------------------------------------------------------------------------

TEST(TimeTest, ConstructorsAgree)
{
    EXPECT_EQ(Micros(1), Nanos(1000));
    EXPECT_EQ(Millis(1), Micros(1000));
    EXPECT_EQ(Seconds(1), Millis(1000));
    EXPECT_EQ(SecondsF(0.5), Millis(500));
}

TEST(TimeTest, Conversions)
{
    EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
    EXPECT_DOUBLE_EQ(ToMillis(Micros(2500)), 2.5);
    EXPECT_DOUBLE_EQ(ToSeconds(Duration::zero()), 0.0);
}

TEST(TimeTest, InfinityOrdersAfterEverything)
{
    EXPECT_GT(kTimeInfinity, Seconds(1'000'000'000));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.NextU64(), b.NextU64());
    }
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.NextU64() == b.NextU64()) {
            ++same;
        }
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.NextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, NextBelowRespectsBound)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(rng.NextBelow(bound), bound);
        }
    }
}

TEST(RngTest, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 6000; ++i) {
        ++counts[rng.NextBelow(6)];
    }
    EXPECT_EQ(counts.size(), 6u);
    for (const auto& [value, count] : counts) {
        EXPECT_GT(count, 700) << "value " << value;  // ~1000 expected.
    }
}

TEST(RngTest, NextInRangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.NextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.NextBool(0.0));
        EXPECT_TRUE(rng.NextBool(1.0));
    }
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(17);
    int heads = 0;
    for (int i = 0; i < 10000; ++i) {
        heads += rng.NextBool(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(19);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.NextGaussian();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(21);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        sum += rng.NextExponential(4.0);
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, GammaMeanMatchesAlpha)
{
    Rng rng(23);
    for (const double alpha : {0.5, 1.0, 2.5, 9.0}) {
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            sum += rng.NextGamma(alpha);
        }
        EXPECT_NEAR(sum / n, alpha, 0.08 * alpha + 0.02) << alpha;
    }
}

TEST(RngTest, BetaMeanAndSupport)
{
    Rng rng(25);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.NextBeta(2.0, 6.0);
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ForkedStreamsIndependent)
{
    Rng a(31);
    Rng b = a.Fork();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.NextU64() == b.NextU64()) {
            ++same;
        }
    }
    EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.ScheduleAt(Millis(30), [&] { order.push_back(3); });
    queue.ScheduleAt(Millis(10), [&] { order.push_back(1); });
    queue.ScheduleAt(Millis(20), [&] { order.push_back(2); });
    queue.RunUntil(Millis(100));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameInstantRunsInInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        queue.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
    }
    queue.RunUntil(Millis(10));
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(EventQueueTest, ClockAdvancesToEventTime)
{
    EventQueue queue;
    TimePoint seen{-1};
    queue.ScheduleAt(Millis(42), [&] { seen = queue.Now(); });
    queue.RunUntil(Seconds(1));
    EXPECT_EQ(seen, Millis(42));
    EXPECT_EQ(queue.Now(), Seconds(1));
}

TEST(EventQueueTest, HorizonRespected)
{
    EventQueue queue;
    bool fired = false;
    queue.ScheduleAt(Millis(500), [&] { fired = true; });
    queue.RunUntil(Millis(499));
    EXPECT_FALSE(fired);
    queue.RunUntil(Millis(500));
    EXPECT_TRUE(fired);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    TimePoint seen{-1};
    queue.ScheduleAt(Millis(10), [&] {
        queue.ScheduleAfter(Millis(5), [&] { seen = queue.Now(); });
    });
    queue.RunUntil(Millis(100));
    EXPECT_EQ(seen, Millis(15));
}

TEST(EventQueueTest, PastEventsClampToNow)
{
    EventQueue queue;
    queue.RunUntil(Millis(100));
    TimePoint seen{-1};
    queue.ScheduleAt(Millis(10), [&] { seen = queue.Now(); });
    queue.RunUntil(Millis(200));
    EXPECT_EQ(seen, Millis(100));
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue queue;
    bool fired = false;
    EventHandle handle =
        queue.ScheduleAt(Millis(10), [&] { fired = true; });
    handle.Cancel();
    queue.RunUntil(Millis(100));
    EXPECT_FALSE(fired);
    EXPECT_TRUE(handle.cancelled());
}

TEST(EventQueueTest, ExecutedCountsOnlyLiveEvents)
{
    EventQueue queue;
    auto h1 = queue.ScheduleAt(Millis(1), [] {});
    queue.ScheduleAt(Millis(2), [] {});
    h1.Cancel();
    queue.RunUntil(Millis(10));
    EXPECT_EQ(queue.executed(), 1u);
}

TEST(EventQueueTest, StepExecutesOne)
{
    EventQueue queue;
    int count = 0;
    queue.ScheduleAt(Millis(1), [&] { ++count; });
    queue.ScheduleAt(Millis(2), [&] { ++count; });
    EXPECT_TRUE(queue.Step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(queue.Step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(queue.Step());
}

TEST(EventQueueTest, RunUntilIdleDrains)
{
    EventQueue queue;
    int count = 0;
    // Chain of events, each scheduling the next.
    std::function<void()> chain = [&] {
        if (++count < 50) {
            queue.ScheduleAfter(Millis(1), chain);
        }
    };
    queue.ScheduleAfter(Millis(1), chain);
    queue.RunUntilIdle();
    EXPECT_EQ(count, 50);
}

TEST(EventQueueTest, CancelAfterFireIsHarmlessNoOp)
{
    EventQueue queue;
    int fired = 0;
    EventHandle handle = queue.ScheduleAt(Millis(1), [&] { ++fired; });
    queue.RunUntil(Millis(10));
    EXPECT_EQ(fired, 1);
    // The event already ran: Cancel must not take effect (the handle's
    // generation token can no longer match the recycled slot).
    handle.Cancel();
    EXPECT_FALSE(handle.cancelled());
    EXPECT_FALSE(handle.pending());
    EXPECT_EQ(queue.stats().cancelled, 0u);
}

TEST(EventQueueTest, CancelRemovesEventEagerly)
{
    EventQueue queue;
    EventHandle handle = queue.ScheduleAt(Seconds(100), [] {});
    EXPECT_EQ(queue.pending(), 1u);
    EXPECT_TRUE(handle.pending());
    handle.Cancel();
    // Eager semantics: the event leaves the queue immediately instead
    // of rotting until its deadline.
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_FALSE(handle.pending());
    EXPECT_TRUE(handle.cancelled());
    EXPECT_EQ(queue.stats().cancelled, 1u);
    // Double-cancel is a no-op.
    handle.Cancel();
    EXPECT_EQ(queue.stats().cancelled, 1u);
}

TEST(EventQueueTest, StaleHandleCannotCancelRecycledSlot)
{
    EventQueue queue;
    EventHandle old_handle = queue.ScheduleAt(Millis(1), [] {});
    queue.RunUntil(Millis(2));  // Fires; the arena slot is recycled.

    bool fired = false;
    queue.ScheduleAt(Millis(5), [&] { fired = true; });
    // The LIFO free list hands the new event the old event's slot; the
    // stale handle's generation token must not be able to touch it.
    old_handle.Cancel();
    queue.RunUntil(Millis(10));
    EXPECT_TRUE(fired);
    EXPECT_FALSE(old_handle.cancelled());
}

TEST(EventQueueTest, SameInstantFifoSurvivesInterleavedCancellation)
{
    EventQueue queue;
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 10; ++i) {
        handles.push_back(queue.ScheduleAt(
            Millis(5), [&order, i] { order.push_back(i); }));
    }
    for (int i = 1; i < 10; i += 2) {
        handles[static_cast<std::size_t>(i)].Cancel();
    }
    queue.RunUntil(Millis(10));
    // Cancelling the odd events must not disturb the insertion order
    // of the surviving same-instant events.
    EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(EventQueueTest, PendingLimitDropsLoudly)
{
    EventQueue queue;
    queue.SetPendingLimit(2);
    int fired = 0;
    queue.ScheduleAt(Millis(1), [&] { ++fired; });
    queue.ScheduleAt(Millis(2), [&] { ++fired; });
    EventHandle dropped = queue.ScheduleAt(Millis(3), [&] { ++fired; });
    // The overflowing event is rejected: never runs, and its handle
    // says so up front.
    EXPECT_TRUE(dropped.cancelled());
    EXPECT_FALSE(dropped.pending());
    EXPECT_EQ(queue.stats().dropped, 1u);
    queue.RunUntil(Millis(10));
    EXPECT_EQ(fired, 2);
    // Capacity freed by firing events re-admits new ones.
    queue.ScheduleAt(Millis(11), [&] { ++fired; });
    queue.RunUntil(Millis(20));
    EXPECT_EQ(fired, 3);
}

TEST(EventQueueTest, ArenaRecyclesSlotsOnTheSteadyPath)
{
    EventQueue queue;
    PeriodicTask task(queue, Millis(1), [] {});
    queue.RunUntil(Seconds(10));  // 10k firings through one slot chain.
    const EventQueueStats stats = queue.stats();
    EXPECT_GE(stats.executed, 10'000u);
    // One periodic event in flight: the arena never grows past its
    // first block, however many events pass through.
    EXPECT_EQ(stats.arena_blocks, 1u);
    EXPECT_LE(stats.peak_pending, 2u);
}

TEST(EventQueueTest, TraceHashIsDeterministicForAFixedSeed)
{
    const auto run = [](std::uint64_t seed) {
        EventQueue queue;
        Rng rng(seed);
        // A seeded cascade: each event schedules a random follow-up.
        std::function<void(int)> step = [&](int depth) {
            if (depth > 0) {
                queue.ScheduleAfter(
                    Micros(static_cast<std::int64_t>(rng.NextBelow(500))),
                    [&step, depth] { step(depth - 1); });
            }
        };
        for (int i = 0; i < 50; ++i) {
            step(40);
        }
        queue.RunUntilIdle();
        return queue.trace_hash();
    };
    EXPECT_EQ(run(7), run(7));   // Same seed, same trace fingerprint.
    EXPECT_NE(run(7), run(11));  // Different seed, different trace.
}

TEST(EventQueueTest, TraceHashSeesTimingDivergence)
{
    EventQueue a;
    EventQueue b;
    a.ScheduleAt(Millis(1), [] {});
    b.ScheduleAt(Millis(2), [] {});
    a.RunUntil(Millis(10));
    b.RunUntil(Millis(10));
    EXPECT_NE(a.trace_hash(), b.trace_hash());
}

TEST(EventQueueTest, HandleOutlivesQueueSafely)
{
    EventHandle handle;
    {
        EventQueue queue;
        handle = queue.ScheduleAt(Millis(1), [] {});
    }
    // The arena is shared-ptr-owned: operations on a handle whose
    // queue died are safe no-ops.
    handle.Cancel();
    EXPECT_FALSE(handle.pending());
}

TEST(EventQueueTest, StatsTrackLifetimeCounters)
{
    EventQueue queue;
    auto h1 = queue.ScheduleAt(Millis(1), [] {});
    queue.ScheduleAt(Millis(2), [] {});
    h1.Cancel();
    queue.RunUntil(Millis(10));
    const EventQueueStats stats = queue.stats();
    EXPECT_EQ(stats.scheduled, 2u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.pending, 0u);
    EXPECT_EQ(stats.peak_pending, 2u);
    EXPECT_GT(stats.arena_capacity, 0u);
}

TEST(PeriodicTaskTest, TicksAtPeriod)
{
    EventQueue queue;
    std::vector<TimePoint> ticks;
    PeriodicTask task(queue, Millis(10),
                      [&] { ticks.push_back(queue.Now()); });
    queue.RunUntil(Millis(35));
    ASSERT_EQ(ticks.size(), 3u);
    EXPECT_EQ(ticks[0], Millis(10));
    EXPECT_EQ(ticks[1], Millis(20));
    EXPECT_EQ(ticks[2], Millis(30));
}

TEST(PeriodicTaskTest, StopHaltsTicks)
{
    EventQueue queue;
    int count = 0;
    PeriodicTask task(queue, Millis(10), [&] { ++count; });
    queue.RunUntil(Millis(25));
    task.Stop();
    queue.RunUntil(Millis(100));
    EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, DestructionCancelsPending)
{
    EventQueue queue;
    int count = 0;
    {
        PeriodicTask task(queue, Millis(10), [&] { ++count; });
        queue.RunUntil(Millis(15));
    }
    queue.RunUntil(Millis(100));
    EXPECT_EQ(count, 1);
}

TEST(PeriodicTaskTest, StopLeavesNothingInTheQueue)
{
    EventQueue queue;
    PeriodicTask task(queue, Millis(10), [] {});
    queue.RunUntil(Millis(15));
    EXPECT_EQ(queue.pending(), 1u);  // The armed next tick.
    task.Stop();
    // Stop cancels the pending tick eagerly — no dead event lingers.
    EXPECT_EQ(queue.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------------

TEST(ZipfSamplerTest, UniformWhenSkewZero)
{
    Rng rng(41);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 20000; ++i) {
        ++counts[zipf.Sample(rng)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, 2000, 250);
    }
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks)
{
    Rng rng(43);
    ZipfSampler zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i) {
        ++counts[zipf.Sample(rng)];
    }
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSamplerTest, PmfSumsToOne)
{
    ZipfSampler zipf(64, 0.9);
    double total = 0.0;
    for (std::size_t i = 0; i < 64; ++i) {
        total += zipf.Pmf(i);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfMonotonicallyDecreasing)
{
    ZipfSampler zipf(32, 1.2);
    for (std::size_t i = 1; i < 32; ++i) {
        EXPECT_GE(zipf.Pmf(i - 1), zipf.Pmf(i) - 1e-12);
    }
}

TEST(RankPermutationTest, IsAPermutation)
{
    Rng rng(47);
    RankPermutation perm(50, rng);
    std::vector<bool> seen(50, false);
    for (std::size_t r = 0; r < 50; ++r) {
        const auto item = perm.ItemFor(r);
        ASSERT_LT(item, 50u);
        EXPECT_FALSE(seen[item]);
        seen[item] = true;
    }
}

TEST(RankPermutationTest, ChurnPreservesPermutation)
{
    Rng rng(53);
    RankPermutation perm(50, rng);
    perm.Churn(0.2, rng);
    std::vector<bool> seen(50, false);
    for (std::size_t r = 0; r < 50; ++r) {
        const auto item = perm.ItemFor(r);
        EXPECT_FALSE(seen[item]);
        seen[item] = true;
    }
}

TEST(RankPermutationTest, ShuffleChangesMapping)
{
    Rng rng(59);
    RankPermutation perm(100, rng);
    std::vector<std::size_t> before(100);
    for (std::size_t r = 0; r < 100; ++r) {
        before[r] = perm.ItemFor(r);
    }
    perm.Shuffle(rng);
    int moved = 0;
    for (std::size_t r = 0; r < 100; ++r) {
        if (perm.ItemFor(r) != before[r]) {
            ++moved;
        }
    }
    EXPECT_GT(moved, 50);
}

// Property sweep: zipf head coverage grows with skew.
class ZipfSkewTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkewTest, Top10CoverageGrowsWithSkew)
{
    const double skew = GetParam();
    ZipfSampler zipf(100, skew);
    double top10 = 0.0;
    for (std::size_t i = 0; i < 10; ++i) {
        top10 += zipf.Pmf(i);
    }
    // Uniform coverage of the top 10 items is 0.10.
    if (skew == 0.0) {
        EXPECT_NEAR(top10, 0.10, 1e-9);
    } else {
        EXPECT_GT(top10, 0.10);
    }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.0, 0.5, 0.9, 1.2, 1.5));

}  // namespace
}  // namespace sol::sim
