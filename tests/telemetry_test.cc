/**
 * @file
 * Tests for the telemetry substrate: online stats, window percentiles,
 * metric registry, and table rendering.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/latency_histogram.h"
#include "telemetry/metric_registry.h"
#include "telemetry/online_stats.h"
#include "telemetry/window_percentile.h"

namespace sol::telemetry {
namespace {

using sim::Millis;
using sim::Seconds;
using sim::TimePoint;

// ---------------------------------------------------------------------------
// OnlineStats
// ---------------------------------------------------------------------------

TEST(OnlineStatsTest, EmptyIsZero)
{
    OnlineStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 0.0);
    EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(OnlineStatsTest, SingleValue)
{
    OnlineStats stats;
    stats.Add(5.0);
    EXPECT_EQ(stats.count(), 1u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 5.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStatsTest, MatchesClosedForm)
{
    OnlineStats stats;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.Add(x);
    }
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStatsTest, NegativeValues)
{
    OnlineStats stats;
    stats.Add(-3.0);
    stats.Add(3.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), -3.0);
    EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(OnlineStatsTest, ResetClears)
{
    OnlineStats stats;
    stats.Add(1.0);
    stats.Add(2.0);
    stats.Reset();
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Ewma
// ---------------------------------------------------------------------------

TEST(EwmaTest, SeedsWithFirstValue)
{
    Ewma ewma(0.1);
    EXPECT_TRUE(ewma.empty());
    ewma.Add(10.0);
    EXPECT_FALSE(ewma.empty());
    EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstant)
{
    Ewma ewma(0.3);
    ewma.Add(0.0);
    for (int i = 0; i < 100; ++i) {
        ewma.Add(8.0);
    }
    EXPECT_NEAR(ewma.value(), 8.0, 1e-6);
}

TEST(EwmaTest, AlphaOneTracksExactly)
{
    Ewma ewma(1.0);
    ewma.Add(1.0);
    ewma.Add(42.0);
    EXPECT_DOUBLE_EQ(ewma.value(), 42.0);
}

TEST(EwmaTest, ResetForgets)
{
    Ewma ewma(0.5);
    ewma.Add(100.0);
    ewma.Reset();
    EXPECT_TRUE(ewma.empty());
    ewma.Add(1.0);
    EXPECT_DOUBLE_EQ(ewma.value(), 1.0);
}

// ---------------------------------------------------------------------------
// SlidingWindow
// ---------------------------------------------------------------------------

TEST(SlidingWindowTest, FillsToCapacity)
{
    SlidingWindow window(3);
    window.Add(1.0);
    window.Add(2.0);
    EXPECT_FALSE(window.full());
    window.Add(3.0);
    EXPECT_TRUE(window.full());
    EXPECT_DOUBLE_EQ(window.Mean(), 2.0);
}

TEST(SlidingWindowTest, EvictsOldest)
{
    SlidingWindow window(3);
    for (const double x : {1.0, 2.0, 3.0, 10.0}) {
        window.Add(x);
    }
    EXPECT_DOUBLE_EQ(window.Mean(), 5.0);  // {10, 2, 3}.
}

TEST(SlidingWindowTest, QuantileNearestRank)
{
    SlidingWindow window(5);
    for (const double x : {5.0, 1.0, 4.0, 2.0, 3.0}) {
        window.Add(x);
    }
    EXPECT_DOUBLE_EQ(window.Quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(window.Quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(window.Quantile(1.0), 5.0);
}

TEST(SlidingWindowTest, EmptyQuantileIsZero)
{
    SlidingWindow window(4);
    EXPECT_DOUBLE_EQ(window.Quantile(0.9), 0.0);
    EXPECT_DOUBLE_EQ(window.Mean(), 0.0);
}

// ---------------------------------------------------------------------------
// WindowPercentile
// ---------------------------------------------------------------------------

TEST(WindowPercentileTest, QuantileOverWindow)
{
    WindowPercentile wp(Seconds(10));
    for (int i = 1; i <= 10; ++i) {
        wp.Add(Seconds(i), static_cast<double>(i));
    }
    EXPECT_DOUBLE_EQ(wp.Quantile(Seconds(10), 1.0), 10.0);
    EXPECT_DOUBLE_EQ(wp.Quantile(Seconds(10), 0.0), 1.0);
}

TEST(WindowPercentileTest, OldSamplesEvicted)
{
    WindowPercentile wp(Seconds(5));
    wp.Add(Seconds(0), 100.0);
    wp.Add(Seconds(8), 1.0);
    // At t=10 the window is (5, 10]; the t=0 sample is gone.
    EXPECT_DOUBLE_EQ(wp.Quantile(Seconds(10), 1.0), 1.0);
    EXPECT_EQ(wp.Count(Seconds(10)), 1u);
}

TEST(WindowPercentileTest, P90OfMixedSamples)
{
    WindowPercentile wp(Seconds(100));
    // 95 low samples and 5 high ones: P90 should stay low.
    for (int i = 0; i < 95; ++i) {
        wp.Add(Millis(i * 100), 0.01);
    }
    for (int i = 95; i < 100; ++i) {
        wp.Add(Millis(i * 100), 0.99);
    }
    EXPECT_LT(wp.Quantile(Seconds(10), 0.9), 0.5);
    // 20 high samples tip the P90 over.
    for (int i = 100; i < 120; ++i) {
        wp.Add(Millis(i * 100), 0.99);
    }
    EXPECT_GT(wp.Quantile(Seconds(12), 0.9), 0.5);
}

TEST(WindowPercentileTest, EmptyReturnsZero)
{
    WindowPercentile wp(Seconds(1));
    EXPECT_DOUBLE_EQ(wp.Quantile(Seconds(5), 0.9), 0.0);
}

TEST(WindowPercentileTest, ResetClears)
{
    WindowPercentile wp(Seconds(10));
    wp.Add(Seconds(1), 5.0);
    wp.Reset();
    EXPECT_EQ(wp.Count(Seconds(1)), 0u);
}

// ---------------------------------------------------------------------------
// MetricRegistry and TableWriter
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, CountersAccumulate)
{
    MetricRegistry registry;
    registry.Increment("a");
    registry.Increment("a", 4);
    EXPECT_EQ(registry.Counter("a"), 5u);
    EXPECT_EQ(registry.Counter("missing"), 0u);
}

TEST(MetricRegistryTest, GaugesOverwrite)
{
    MetricRegistry registry;
    registry.SetGauge("g", 1.5);
    registry.SetGauge("g", 2.5);
    EXPECT_DOUBLE_EQ(registry.Gauge("g"), 2.5);
    EXPECT_TRUE(registry.HasGauge("g"));
    EXPECT_FALSE(registry.HasGauge("missing"));
}

TEST(MetricRegistryTest, SeriesAppend)
{
    MetricRegistry registry;
    registry.AppendSeries("s", 1.0, 10.0);
    registry.AppendSeries("s", 2.0, 20.0);
    const auto& series = registry.Series("s");
    ASSERT_EQ(series.size(), 2u);
    EXPECT_DOUBLE_EQ(series[1].y, 20.0);
    EXPECT_TRUE(registry.Series("missing").empty());
}

TEST(MetricRegistryTest, ClearRemovesEverything)
{
    MetricRegistry registry;
    registry.Increment("c");
    registry.SetGauge("g", 1.0);
    registry.AppendSeries("s", 0.0, 0.0);
    registry.Clear();
    EXPECT_EQ(registry.Counter("c"), 0u);
    EXPECT_FALSE(registry.HasGauge("g"));
    EXPECT_TRUE(registry.Series("s").empty());
}

TEST(MetricRegistryTest, CsvOutput)
{
    MetricRegistry registry;
    registry.AppendSeries("s", 1.0, 2.0);
    std::ostringstream out;
    registry.PrintSeriesCsv(out, "s");
    EXPECT_EQ(out.str(), "1,2\n");
}

TEST(TableWriterTest, RejectsMismatchedRow)
{
    TableWriter table({"a", "b"});
    EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TableWriterTest, RendersAlignedColumns)
{
    TableWriter table({"name", "value"});
    table.AddRow({"x", "1"});
    table.AddRow({"longer-name", "2"});
    std::ostringstream out;
    table.Print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("name"), std::string::npos);
    // Header separator present.
    EXPECT_NE(text.find("|--"), std::string::npos);
}

TEST(TableWriterTest, NumFormatsPrecision)
{
    EXPECT_EQ(TableWriter::Num(1.23456, 2), "1.23");
    EXPECT_EQ(TableWriter::Num(2.0, 0), "2");
}

// ---------------------------------------------------------------------------
// MetricScope namespacing and registry merging (multi-agent accounting)
// ---------------------------------------------------------------------------

TEST(MetricScopeTest, PrefixesEveryMetricKind)
{
    MetricRegistry registry;
    MetricScope scope(registry, "node0");
    scope.Increment("epochs", 3);
    scope.SetGauge("p99", 1.5);
    scope.AppendSeries("trace", 1.0, 2.0);

    EXPECT_EQ(registry.Counter("node0.epochs"), 3u);
    EXPECT_EQ(registry.Gauge("node0.p99"), 1.5);
    ASSERT_EQ(registry.Series("node0.trace").size(), 1u);
    EXPECT_EQ(scope.Counter("epochs"), 3u);
    EXPECT_EQ(scope.Gauge("p99"), 1.5);
}

TEST(MetricScopeTest, SubScopesNest)
{
    MetricRegistry registry;
    MetricScope agent = MetricScope(registry, "node1").Sub("harvest");
    agent.Increment("denied");
    EXPECT_EQ(registry.Counter("node1.harvest.denied"), 1u);
}

TEST(MetricRegistryTest, MergeFromNamespacesAndAccumulates)
{
    MetricRegistry node;
    node.Increment("epochs", 5);
    node.SetGauge("p99", 2.0);
    node.AppendSeries("trace", 0.0, 1.0);

    MetricRegistry fleet;
    fleet.MergeFrom(node, "node3");
    fleet.MergeFrom(node, "node3");  // Counters accumulate on re-merge.
    EXPECT_EQ(fleet.Counter("node3.epochs"), 10u);
    EXPECT_EQ(fleet.Gauge("node3.p99"), 2.0);
    EXPECT_EQ(fleet.Series("node3.trace").size(), 2u);
}

// ---------------------------------------------------------------------------
// JSON output (the machine-readable bench companion)
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, WriteJsonEmitsAllMetricKinds)
{
    MetricRegistry registry;
    registry.Increment("runs", 2);
    registry.SetGauge("speedup", 1.25);
    registry.AppendSeries("curve", 1.0, 2.0);
    std::ostringstream out;
    registry.WriteJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"runs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"speedup\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("[[1,2]]"), std::string::npos);
}

TEST(BenchJsonTest, TablesSerializeWithNumericCells)
{
    TableWriter table({"workload", "perf"});
    table.AddRow({"image-dnn", "1.250"});
    table.AddRow({"moses", "n/a"});

    BenchJson json("fig_test");
    json.AddTable("results", table);
    std::ostringstream out;
    json.Write(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("\"bench\": \"fig_test\""), std::string::npos);
    EXPECT_NE(text.find("\"headers\": [\"workload\",\"perf\"]"),
              std::string::npos);
    // Numeric-looking cells become JSON numbers, others stay strings.
    EXPECT_NE(text.find("[\"image-dnn\",1.25]"), std::string::npos);
    EXPECT_NE(text.find("[\"moses\",\"n/a\"]"), std::string::npos);
}

TEST(BenchJsonTest, MetricsSectionsEmbedRegistries)
{
    MetricRegistry registry;
    registry.Increment("conflicts", 4);
    BenchJson json("fig_test");
    json.AddMetrics("fleet", registry);
    std::ostringstream out;
    json.Write(out);
    EXPECT_NE(out.str().find("\"conflicts\": 4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, EmptySnapshotIsZero)
{
    LatencyHistogram hist;
    EXPECT_TRUE(hist.empty());
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.min_ns(), 0u);
    EXPECT_EQ(hist.max_ns(), 0u);
    const LatencySnapshot snap = hist.Snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.p50_ns, 0u);
    EXPECT_EQ(snap.p999_ns, 0u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact)
{
    // Values below the sub-bucket count land in unit-wide buckets.
    LatencyHistogram hist;
    for (std::uint64_t v = 0; v < 8; ++v) {
        hist.Record(v);
    }
    EXPECT_EQ(hist.count(), 8u);
    EXPECT_EQ(hist.min_ns(), 0u);
    EXPECT_EQ(hist.max_ns(), 7u);
    EXPECT_EQ(hist.ValueAtPercentile(1.0), 0u);
    EXPECT_EQ(hist.ValueAtPercentile(100.0), 7u);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketError)
{
    // Log-bucketed with 8 sub-buckets: relative error <= 1/8 per value.
    LatencyHistogram hist;
    for (std::uint64_t v = 1; v <= 10'000; ++v) {
        hist.Record(v);
    }
    const std::uint64_t p50 = hist.ValueAtPercentile(50.0);
    EXPECT_GE(p50, 4'400u);
    EXPECT_LE(p50, 5'650u);
    const std::uint64_t p99 = hist.ValueAtPercentile(99.0);
    EXPECT_GE(p99, 8'700u);
    EXPECT_LE(p99, 10'000u);  // Clamped to the observed max.
    const std::uint64_t p100 = hist.ValueAtPercentile(100.0);
    EXPECT_GE(p100, 8'750u);  // Top bucket's representative...
    EXPECT_LE(p100, 10'000u);  // ...never above the observed max.
}

TEST(LatencyHistogramTest, PercentileClampedToObservedRange)
{
    LatencyHistogram hist;
    hist.Record(1'000'000);
    // A single sample: every percentile is that sample, not a bucket
    // representative above or below it.
    EXPECT_EQ(hist.ValueAtPercentile(0.0), 1'000'000u);
    EXPECT_EQ(hist.ValueAtPercentile(50.0), 1'000'000u);
    EXPECT_EQ(hist.ValueAtPercentile(99.9), 1'000'000u);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording)
{
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram combined;
    for (std::uint64_t v = 1; v <= 500; ++v) {
        a.Record(v * 3);
        combined.Record(v * 3);
    }
    for (std::uint64_t v = 1; v <= 500; ++v) {
        b.Record(v * 7'919);
        combined.Record(v * 7'919);
    }
    a.Merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum_ns(), combined.sum_ns());
    EXPECT_EQ(a.min_ns(), combined.min_ns());
    EXPECT_EQ(a.max_ns(), combined.max_ns());
    for (const double p : {50.0, 90.0, 99.0, 99.9}) {
        EXPECT_EQ(a.ValueAtPercentile(p), combined.ValueAtPercentile(p));
    }
}

TEST(LatencyHistogramTest, ResetClears)
{
    LatencyHistogram hist;
    hist.Record(42);
    hist.Reset();
    EXPECT_TRUE(hist.empty());
    EXPECT_EQ(hist.ValueAtPercentile(50.0), 0u);
}

TEST(SharedLatencyHistogramTest, RecordsThroughTheLock)
{
    SharedLatencyHistogram shared;
    shared.Record(100);
    shared.Record(200);
    const LatencyHistogram copy = shared.Histogram();
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_EQ(copy.sum_ns(), 300u);
    shared.Reset();
    EXPECT_TRUE(shared.Histogram().empty());
}

// ---------------------------------------------------------------------------
// MetricRegistry: histograms + the unknown-name contract
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, HasCounterAndHasSeriesDistinguishMissing)
{
    MetricRegistry registry;
    registry.Increment("present", 0);  // Zero-valued but registered.
    registry.AppendSeries("curve", 1.0, 2.0);
    EXPECT_TRUE(registry.HasCounter("present"));
    EXPECT_FALSE(registry.HasCounter("absent"));
    EXPECT_TRUE(registry.HasSeries("curve"));
    EXPECT_FALSE(registry.HasSeries("absent"));
    // The unknown-name reads themselves return zero/empty...
    EXPECT_EQ(registry.Counter("absent"), 0u);
    EXPECT_TRUE(registry.Series("absent").empty());
    // ...and never materialize the name as a side effect.
    EXPECT_FALSE(registry.HasCounter("absent"));
    EXPECT_FALSE(registry.HasSeries("absent"));
}

TEST(MetricRegistryTest, PrintSeriesCsvUnknownNameWritesNothing)
{
    MetricRegistry registry;
    std::ostringstream out;
    registry.PrintSeriesCsv(out, "no_such_series");
    EXPECT_TRUE(out.str().empty());
    EXPECT_FALSE(registry.HasSeries("no_such_series"));
}

TEST(MetricRegistryTest, HistogramsRecordMergeAndSnapshot)
{
    MetricRegistry registry;
    registry.RecordLatency("epoch_ns", 1'000);
    registry.RecordLatency("epoch_ns", 3'000);
    EXPECT_TRUE(registry.HasHistogram("epoch_ns"));
    EXPECT_FALSE(registry.HasHistogram("absent"));
    EXPECT_EQ(registry.Histogram("epoch_ns").count(), 2u);
    EXPECT_TRUE(registry.Histogram("absent").empty());

    LatencyHistogram more;
    more.Record(5'000);
    registry.MergeHistogram("epoch_ns", more);
    EXPECT_EQ(registry.Histogram("epoch_ns").count(), 3u);

    // SetHistogram overwrites (the idempotent-flush idiom).
    registry.SetHistogram("epoch_ns", more);
    EXPECT_EQ(registry.Histogram("epoch_ns").count(), 1u);
}

TEST(MetricRegistryTest, WriteJsonEmitsHistogramPercentiles)
{
    MetricRegistry registry;
    for (std::uint64_t v = 1; v <= 100; ++v) {
        registry.RecordLatency("admit_ns", v * 1'000);
    }
    std::ostringstream out;
    registry.WriteJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"admit_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"p50_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
}

TEST(MetricRegistryTest, MergeFromMergesHistogramsBucketwise)
{
    MetricRegistry node;
    node.RecordLatency("epoch_ns", 2'000);
    MetricRegistry fleet;
    fleet.RecordLatency("node0.epoch_ns", 1'000);
    fleet.MergeFrom(node, "node0");
    EXPECT_EQ(fleet.Histogram("node0.epoch_ns").count(), 2u);
    EXPECT_EQ(fleet.Histogram("node0.epoch_ns").sum_ns(), 3'000u);
}

TEST(MetricScopeTest, HistogramCallsPrefix)
{
    MetricRegistry registry;
    MetricScope scope(registry, "arbiter");
    scope.RecordLatency("lock_wait_ns", 500);
    EXPECT_TRUE(registry.HasHistogram("arbiter.lock_wait_ns"));
    LatencyHistogram replacement;
    replacement.Record(1);
    replacement.Record(2);
    scope.SetHistogram("lock_wait_ns", replacement);
    EXPECT_EQ(registry.Histogram("arbiter.lock_wait_ns").count(), 2u);
    scope.MergeHistogram("lock_wait_ns", replacement);
    EXPECT_EQ(registry.Histogram("arbiter.lock_wait_ns").count(), 4u);
}

// ---------------------------------------------------------------------------
// OnlineStats::Merge (Chan et al. parallel combination)
// ---------------------------------------------------------------------------

TEST(OnlineStatsMergeTest, MergeMatchesSequentialAccumulation)
{
    OnlineStats left;
    OnlineStats right;
    OnlineStats sequential;
    for (int i = 0; i < 50; ++i) {
        const double x = 3.5 * i - 40.0;
        left.Add(x);
        sequential.Add(x);
    }
    for (int i = 0; i < 37; ++i) {
        const double x = -0.25 * i * i + 7.0;
        right.Add(x);
        sequential.Add(x);
    }

    left.Merge(right);
    EXPECT_EQ(left.count(), sequential.count());
    EXPECT_NEAR(left.mean(), sequential.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), sequential.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), sequential.min());
    EXPECT_DOUBLE_EQ(left.max(), sequential.max());
    EXPECT_NEAR(left.sum(), sequential.sum(), 1e-9);
}

TEST(OnlineStatsMergeTest, MergingEmptyIsIdentityBothWays)
{
    OnlineStats stats;
    stats.Add(1.0);
    stats.Add(3.0);

    OnlineStats empty;
    stats.Merge(empty);  // Right identity.
    EXPECT_EQ(stats.count(), 2u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);

    OnlineStats target;
    target.Merge(stats);  // Left identity: adopt other's state.
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 2.0);
    EXPECT_DOUBLE_EQ(target.min(), 1.0);
    EXPECT_DOUBLE_EQ(target.max(), 3.0);

    OnlineStats a;
    OnlineStats b;
    a.Merge(b);  // Empty + empty stays empty.
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(OnlineStatsMergeTest, DistantMeansStayNumericallyStable)
{
    // The naive sum-of-squares formulation loses catastrophically when
    // two shards observe well-separated clusters; Chan's delta term
    // must not.
    OnlineStats low;
    OnlineStats high;
    OnlineStats sequential;
    for (int i = 0; i < 100; ++i) {
        low.Add(1e6 + i);
        sequential.Add(1e6 + i);
    }
    for (int i = 0; i < 100; ++i) {
        high.Add(-1e6 + i);
        sequential.Add(-1e6 + i);
    }
    low.Merge(high);
    EXPECT_NEAR(low.variance(), sequential.variance(),
                sequential.variance() * 1e-9);
}

// ---------------------------------------------------------------------------
// WindowPercentile edge cases
// ---------------------------------------------------------------------------

TEST(WindowPercentileTest, SingleSampleAnswersEveryQuantile)
{
    WindowPercentile tracker(Seconds(1));
    tracker.Add(TimePoint(Millis(100)), 42.0);
    EXPECT_DOUBLE_EQ(tracker.Quantile(TimePoint(Millis(100)), 0.0), 42.0);
    EXPECT_DOUBLE_EQ(tracker.Quantile(TimePoint(Millis(100)), 0.5), 42.0);
    EXPECT_DOUBLE_EQ(tracker.Quantile(TimePoint(Millis(100)), 1.0), 42.0);
    EXPECT_EQ(tracker.Count(TimePoint(Millis(100))), 1u);
}

TEST(WindowPercentileTest, EvictionBoundaryIsExclusive)
{
    // The window is (now - window, now]: a sample exactly `window` old
    // is evicted, one nanosecond younger survives.
    WindowPercentile tracker(Millis(100));
    tracker.Add(TimePoint(Millis(100)), 1.0);
    EXPECT_EQ(tracker.Count(TimePoint(Millis(200))), 1u);
    EXPECT_EQ(tracker.Count(TimePoint(Millis(200)) + sim::Duration(1)), 0u);
}

TEST(WindowPercentileTest, CountEvictsBeforeCounting)
{
    WindowPercentile tracker(Millis(100));
    for (int i = 0; i < 10; ++i) {
        tracker.Add(TimePoint(Millis(10 * i)), i);
    }
    // At 250ms only samples newer than 150ms remain: 160..190ms.
    EXPECT_EQ(tracker.Count(TimePoint(Millis(250))), 0u);
    tracker.Reset();
    for (int i = 0; i < 10; ++i) {
        tracker.Add(TimePoint(Millis(10 * i)), i);
    }
    EXPECT_EQ(tracker.Count(TimePoint(Millis(150))), 5u);
}

TEST(WindowPercentileTest, ExtremeValuesSurviveQuantiles)
{
    WindowPercentile tracker(Seconds(10));
    const double huge = 1e300;
    tracker.Add(TimePoint(Millis(1)), -huge);
    tracker.Add(TimePoint(Millis(2)), 0.0);
    tracker.Add(TimePoint(Millis(3)), huge);
    EXPECT_DOUBLE_EQ(tracker.Quantile(TimePoint(Millis(3)), 0.0), -huge);
    EXPECT_DOUBLE_EQ(tracker.Quantile(TimePoint(Millis(3)), 0.5), 0.0);
    EXPECT_DOUBLE_EQ(tracker.Quantile(TimePoint(Millis(3)), 1.0), huge);
}

// ---------------------------------------------------------------------------
// Metric name sanitization & registry visitation
// ---------------------------------------------------------------------------

TEST(MetricNameTest, SanitizeMapsDotsAndInvalidRunsToUnderscores)
{
    EXPECT_EQ(SanitizeMetricName("fleet.data.invalid"),
              "fleet_data_invalid");
    EXPECT_EQ(SanitizeMetricName("epoch-latency.p99_ns"),
              "epoch_latency_p99_ns");
    EXPECT_EQ(SanitizeMetricName("already_valid:name"),
              "already_valid:name");
    EXPECT_EQ(SanitizeMetricName("9leading"), "_9leading");
    EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(MetricNameTest, ValidityMatchesSanitizedFixedPoint)
{
    EXPECT_TRUE(IsValidMetricName("fleet_epochs"));
    EXPECT_TRUE(IsValidMetricName("_private:scope"));
    EXPECT_FALSE(IsValidMetricName("fleet.epochs"));
    EXPECT_FALSE(IsValidMetricName("9digit"));
    EXPECT_FALSE(IsValidMetricName(""));
    // Sanitize is idempotent and always lands on a valid name.
    for (const char* name :
         {"fleet.data.invalid", "9leading", "weird name!", "ok_name"}) {
        const std::string sanitized = SanitizeMetricName(name);
        EXPECT_TRUE(IsValidMetricName(sanitized)) << name;
        EXPECT_EQ(SanitizeMetricName(sanitized), sanitized) << name;
    }
}

TEST(MetricRegistryTest, VisitHooksWalkNameOrdered)
{
    MetricRegistry registry;
    registry.Increment("b.count", 2);
    registry.Increment("a.count", 1);
    registry.SetGauge("z.load", 0.5);
    LatencyHistogram hist;
    hist.Record(100);
    registry.MergeHistogram("m.latency", hist);

    std::vector<std::string> counters;
    registry.VisitCounters(
        [&](const std::string& name, std::uint64_t value) {
            counters.push_back(name + "=" + std::to_string(value));
        });
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0], "a.count=1");
    EXPECT_EQ(counters[1], "b.count=2");

    std::size_t gauges = 0;
    registry.VisitGauges([&](const std::string& name, double value) {
        EXPECT_EQ(name, "z.load");
        EXPECT_DOUBLE_EQ(value, 0.5);
        ++gauges;
    });
    EXPECT_EQ(gauges, 1u);

    std::size_t histograms = 0;
    registry.VisitHistograms(
        [&](const std::string& name, const LatencyHistogram& h) {
            EXPECT_EQ(name, "m.latency");
            EXPECT_EQ(h.count(), 1u);
            ++histograms;
        });
    EXPECT_EQ(histograms, 1u);
}

}  // namespace
}  // namespace sol::telemetry
