/**
 * @file
 * Compile-time proof that the thread-safety analysis is armed.
 *
 * A static-analysis gate that silently stops firing is worse than no
 * gate, so the static-analysis CI leg compiles this TU twice with
 * Clang and -Werror=thread-safety:
 *
 *   1. without SOL_EXPECT_THREAD_SAFETY_ERROR — must COMPILE: the
 *      correctly-locked twin below follows the annotation discipline;
 *   2. with    SOL_EXPECT_THREAD_SAFETY_ERROR — must NOT compile: each
 *      guarded block commits a canonical locking bug (guarded read
 *      without the lock, missing SOL_REQUIRES on a *_locked helper,
 *      unreleased capability) that -Wthread-safety must reject.
 *
 * The two ctests (`thread_safety_negative_compiles` and
 * `thread_safety_negative_fires`, tests/CMakeLists.txt) only exist
 * under SOL_THREAD_SAFETY_ANALYSIS=ON; elsewhere the annotations
 * expand to nothing and this file is not part of any build.
 */
#include <cstdint>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace sol::core {
namespace {

/** Minimal guarded structure mirroring the repo's annotated types. */
class GuardedCounter
{
  public:
    void
    Increment()
    {
        MutexLock lock(mutex_);
        ++value_;
    }

    std::uint64_t
    value() const
    {
        MutexLock lock(mutex_);
        return value_;
    }

    /** The *_locked idiom used by EpochEngine::has_queued_locked(). */
    std::uint64_t value_locked() const SOL_REQUIRES(mutex_)
    {
        return value_;
    }

    Mutex& mutex() SOL_RETURN_CAPABILITY(mutex_) { return mutex_; }

  private:
    mutable Mutex mutex_;
    std::uint64_t value_ SOL_GUARDED_BY(mutex_) = 0;
};

#if defined(SOL_EXPECT_THREAD_SAFETY_ERROR)

/** BUG 1: guarded read without the lock. */
std::uint64_t
ReadWithoutLock(GuardedCounter& counter)
{
    return counter.value_locked();  // expected-error: requires mutex
}

/** BUG 2: capability acquired and never released. */
class LeakyLocker
{
  public:
    void
    LockForever()
    {
        mutex_.lock();  // expected-error: still held at end of function
    }

  private:
    Mutex mutex_;
};

/** BUG 3: double acquisition of a non-reentrant capability. */
void
DoubleLock(GuardedCounter& counter)
{
    MutexLock outer(counter.mutex());
    MutexLock inner(counter.mutex());  // expected-error: already held
}

#else

/** The correctly-locked twin: same shapes, discipline followed. */
std::uint64_t
ReadWithLock(GuardedCounter& counter)
{
    MutexLock lock(counter.mutex());
    return counter.value_locked();
}

void
Exercise(GuardedCounter& counter)
{
    counter.Increment();
    (void)counter.value();
}

#endif

}  // namespace
}  // namespace sol::core

int
main()
{
    return 0;
}
