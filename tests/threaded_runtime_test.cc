/**
 * @file
 * Tests for the real-time ThreadedRuntime: the deployable form of SOL's
 * decoupled Model/Actuator loops. Uses millisecond schedules so each
 * test completes quickly while still exercising real threads.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/threaded_runtime.h"

namespace sol::core {
namespace {

using sim::Millis;

/** Minimal thread-safe model. */
class ThreadModel : public Model<int, int>
{
  public:
    int
    CollectData() override
    {
        return data_value.load();
    }

    bool
    ValidateData(const int& data) override
    {
        return data >= 0;
    }

    void
    CommitData(sim::TimePoint, const int&) override
    {
        ++commits;
    }

    void
    UpdateModel() override
    {
        ++updates;
    }

    Prediction<int>
    ModelPredict() override
    {
        return Prediction<int>{1, sim::kTimeInfinity, false};
    }

    Prediction<int>
    DefaultPredict() override
    {
        return Prediction<int>{0, sim::kTimeInfinity, true};
    }

    bool
    AssessModel() override
    {
        return healthy.load();
    }

    std::atomic<int> data_value{5};
    std::atomic<bool> healthy{true};
    std::atomic<int> commits{0};
    std::atomic<int> updates{0};
};

class ThreadActuator : public Actuator<int>
{
  public:
    void
    TakeAction(std::optional<Prediction<int>> pred) override
    {
        ++actions;
        if (pred && pred->is_default) {
            ++default_actions;
        }
        if (pred && !pred->is_default) {
            ++model_actions;
        }
    }

    bool
    AssessPerformance() override
    {
        return performance_ok.load();
    }

    void
    Mitigate() override
    {
        ++mitigations;
    }

    void
    CleanUp() override
    {
        ++cleanups;
    }

    std::atomic<int> actions{0};
    std::atomic<int> default_actions{0};
    std::atomic<int> model_actions{0};
    std::atomic<bool> performance_ok{true};
    std::atomic<int> mitigations{0};
    std::atomic<int> cleanups{0};
};

Schedule
TinySchedule()
{
    Schedule schedule;
    schedule.data_per_epoch = 2;
    schedule.data_collect_interval = Millis(2);
    schedule.max_epoch_time = Millis(40);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = Millis(20);
    schedule.assess_actuator_interval = Millis(10);
    return schedule;
}

TEST(ThreadedRuntimeTest, RejectsInvalidSchedule)
{
    ThreadModel model;
    ThreadActuator actuator;
    Schedule bad;
    bad.data_per_epoch = 0;
    EXPECT_THROW(
        (ThreadedRuntime<int, int>(model, actuator, bad)),
        std::invalid_argument);
}

TEST(ThreadedRuntimeTest, RunsEpochsAndActions)
{
    ThreadModel model;
    ThreadActuator actuator;
    ThreadedRuntime<int, int> runtime(model, actuator, TinySchedule());
    runtime.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    runtime.Stop();
    EXPECT_GT(model.updates.load(), 3);
    EXPECT_GT(actuator.actions.load(), 3);
    const RuntimeStats stats = runtime.stats();
    EXPECT_GT(stats.epochs, 3u);
    EXPECT_GT(stats.predictions_delivered, 3u);
}

TEST(ThreadedRuntimeTest, StopIsIdempotentAndJoins)
{
    ThreadModel model;
    ThreadActuator actuator;
    ThreadedRuntime<int, int> runtime(model, actuator, TinySchedule());
    runtime.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    runtime.Stop();
    runtime.Stop();
    EXPECT_FALSE(runtime.running());
}

TEST(ThreadedRuntimeTest, StartTwiceIsNoop)
{
    ThreadModel model;
    ThreadActuator actuator;
    ThreadedRuntime<int, int> runtime(model, actuator, TinySchedule());
    runtime.Start();
    runtime.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    runtime.Stop();
    EXPECT_GT(model.updates.load(), 0);
}

TEST(ThreadedRuntimeTest, InvalidDataShortCircuitsToDefaults)
{
    ThreadModel model;
    model.data_value = -1;  // Everything invalid.
    ThreadActuator actuator;
    ThreadedRuntime<int, int> runtime(model, actuator, TinySchedule());
    runtime.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    runtime.Stop();
    EXPECT_EQ(model.commits.load(), 0);
    const RuntimeStats stats = runtime.stats();
    EXPECT_GT(stats.short_circuit_epochs, 0u);
    EXPECT_GT(stats.default_predictions, 0u);
}

TEST(ThreadedRuntimeTest, FailedAssessmentInterceptsPredictions)
{
    ThreadModel model;
    model.healthy = false;
    ThreadActuator actuator;
    ThreadedRuntime<int, int> runtime(model, actuator, TinySchedule());
    runtime.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    runtime.Stop();
    EXPECT_GT(actuator.default_actions.load(), 0);
    EXPECT_EQ(actuator.model_actions.load(), 0);
    EXPECT_GT(runtime.stats().intercepted_predictions, 0u);
}

TEST(ThreadedRuntimeTest, SafeguardMitigatesAndHalts)
{
    ThreadModel model;
    ThreadActuator actuator;
    actuator.performance_ok = false;
    ThreadedRuntime<int, int> runtime(model, actuator, TinySchedule());
    runtime.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_TRUE(runtime.actuator_halted());
    EXPECT_GT(actuator.mitigations.load(), 0);
    actuator.performance_ok = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(runtime.actuator_halted());
    runtime.Stop();
}

TEST(ThreadedRuntimeTest, SetDataFaultCorruptsSamplesBeforeValidation)
{
    ThreadModel model;
    ThreadActuator actuator;
    ThreadedRuntime<int, int> runtime(model, actuator, TinySchedule());
    // Historically SimRuntime-only; the shared engine gives the
    // threaded runtime the same hook. Corrupt everything: no sample
    // may survive validation.
    runtime.SetDataFault([](int& data) { data = -1; });
    runtime.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    runtime.Stop();
    EXPECT_EQ(model.commits.load(), 0);
    const RuntimeStats stats = runtime.stats();
    EXPECT_GT(stats.samples_collected, 0u);
    EXPECT_EQ(stats.invalid_samples, stats.samples_collected);
    EXPECT_GT(stats.short_circuit_epochs, 0u);
}

TEST(ThreadedRuntimeTest, FailedAssessmentPersistsAcrossRestart)
{
    ThreadModel model;
    model.healthy = false;
    ThreadActuator actuator;
    Schedule schedule = TinySchedule();
    // Wide collect interval so the post-restart check below runs well
    // before the first epoch of the second run.
    schedule.data_collect_interval = Millis(50);
    schedule.max_epoch_time = Millis(500);
    ThreadedRuntime<int, int> runtime(model, actuator, schedule);
    runtime.Start();
    // Wait until an assessment actually failed.
    for (int i = 0; i < 100 && !runtime.model_assessment_failing(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    runtime.Stop();
    ASSERT_TRUE(runtime.model_assessment_failing());
    // The failed assessment must survive the Stop/Start cycle: until
    // the model passes a new assessment, predictions stay intercepted.
    // (The old implementation reset this state on every Start.)
    runtime.Start();
    EXPECT_TRUE(runtime.model_assessment_failing());
    runtime.Stop();
}

TEST(ThreadedRuntimeTest, DestructorStops)
{
    ThreadModel model;
    ThreadActuator actuator;
    {
        ThreadedRuntime<int, int> runtime(model, actuator,
                                          TinySchedule());
        runtime.Start();
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    // Reaching here without hanging proves the destructor joined.
    SUCCEED();
}

}  // namespace
}  // namespace sol::core
