/**
 * @file
 * Tests for the flight-recorder tracing layer: SPSC ring semantics
 * (exact drop accounting, drain-and-reuse), TraceSpan/instant slot
 * contents, thread-recorder binding, Chrome trace_event serialization
 * (well-formedness + byte determinism), safeguard instrumentation on
 * the epoch engine, sim-mode trace byte-determinism across runs and
 * thread counts, and concurrent record/drain from a 77-producer fleet
 * (this suite runs under TSan in CI — see .github/workflows/ci.yml).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node_shard.h"
#include "core/sim_runtime.h"
#include "fleet/fleet_runner.h"
#include "sim/event_queue.h"
#include "sim/time.h"
#include "telemetry/trace.h"

namespace sol {
namespace {

using telemetry::trace::ChromeTraceWriter;
using telemetry::trace::CurrentThreadRecorder;
using telemetry::trace::ScopedThreadRecorder;
using telemetry::trace::TraceEvent;
using telemetry::trace::TraceRecorder;
using telemetry::trace::TraceSession;
using telemetry::trace::TraceSpan;

/** Settable clock so tests control every timestamp exactly. */
class TestClock : public sim::Clock
{
  public:
    sim::TimePoint Now() const override { return now; }
    sim::TimePoint now{};
};

/** Drains a recorder into a vector of slot copies. */
std::vector<TraceEvent>
Drain(TraceRecorder& recorder)
{
    std::vector<TraceEvent> events;
    recorder.ConsumeAll(
        [&events](const TraceEvent& event) { events.push_back(event); });
    return events;
}

// ---------------------------------------------------------------------------
// TraceRecorder: SPSC ring semantics
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, OverflowDropsAreCountedExactly)
{
    TraceRecorder recorder("t", nullptr, 8);
    ASSERT_EQ(recorder.capacity(), 8u);
    for (int i = 0; i < 20; ++i) {
        recorder.Instant("tick", "test", {{"i", i}});
    }
    // The ring keeps the head of the run and counts every rejection.
    EXPECT_EQ(recorder.recorded(), 8u);
    EXPECT_EQ(recorder.dropped(), 12u);

    const std::vector<TraceEvent> events = Drain(recorder);
    ASSERT_EQ(events.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(events[static_cast<std::size_t>(i)].args[0].value, i);
    }
}

TEST(TraceRecorderTest, DrainFreesSlotsForNewEvents)
{
    TraceRecorder recorder("t", nullptr, 4);
    for (int i = 0; i < 6; ++i) {
        recorder.Instant("a", "test");
    }
    EXPECT_EQ(recorder.dropped(), 2u);
    EXPECT_EQ(Drain(recorder).size(), 4u);

    // The ring is empty again; new events are accepted, and the drop
    // counter keeps its history (it is cumulative, not per-drain).
    recorder.Instant("b", "test");
    EXPECT_EQ(recorder.recorded(), 5u);
    EXPECT_EQ(recorder.dropped(), 2u);
    const std::vector<TraceEvent> events = Drain(recorder);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "b");
}

TEST(TraceRecorderTest, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(TraceRecorder("t", nullptr, 5).capacity(), 8u);
    EXPECT_EQ(TraceRecorder("t", nullptr, 1).capacity(), 2u);
    EXPECT_EQ(TraceRecorder("t", nullptr, 64).capacity(), 64u);
}

TEST(TraceRecorderTest, NullClockStampsZeroExplicitTimestampsSurvive)
{
    TraceRecorder recorder("t", nullptr, 8);
    recorder.Instant("point", "test");
    recorder.Complete("span", "test", sim::Micros(10), sim::Micros(5));

    const std::vector<TraceEvent> events = Drain(recorder);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].ts_ns, 0);
    EXPECT_EQ(events[1].ts_ns, 10'000);
    EXPECT_EQ(events[1].dur_ns, 5'000);
}

TEST(TraceRecorderTest, ClockDrivesInstantTimestamps)
{
    TestClock clock;
    TraceRecorder recorder("t", &clock, 8);
    clock.now = sim::Micros(1234) + sim::Nanos(567);
    recorder.Instant("point", "test");
    const std::vector<TraceEvent> events = Drain(recorder);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].ts_ns, 1'234'567);
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

TEST(TraceSpanTest, RecordsLifetimeWithArgsAndTruncatedString)
{
    TestClock clock;
    TraceRecorder recorder("t", &clock, 8);
    const std::string long_name(40, 'x');
    {
        clock.now = sim::Micros(100);
        TraceSpan span(&recorder, "phase", "test");
        span.AddArg("a", 1);
        span.AddArg("b", 2);
        span.AddArg("c", 3);  // Beyond kMaxArgs: silently ignored.
        span.SetString("agent", long_name);
        clock.now = sim::Micros(130);
    }
    const std::vector<TraceEvent> events = Drain(recorder);
    ASSERT_EQ(events.size(), 1u);
    const TraceEvent& event = events[0];
    EXPECT_EQ(event.kind, TraceEvent::Kind::kComplete);
    EXPECT_EQ(event.ts_ns, 100'000);
    EXPECT_EQ(event.dur_ns, 30'000);
    ASSERT_EQ(event.num_args, 2u);
    EXPECT_EQ(event.args[0].value, 1);
    EXPECT_EQ(event.args[1].value, 2);
    EXPECT_STREQ(event.string_key, "agent");
    EXPECT_EQ(std::string(event.string_value),
              long_name.substr(0, TraceEvent::kMaxStringArg));
}

TEST(TraceSpanTest, NullRecorderIsANoOp)
{
    // The disabled path: no clock reads, no slots, no crashes.
    TraceSpan span(nullptr, "phase", "test");
    span.AddArg("a", 1);
    span.SetString("agent", "name");
}

TEST(TraceSpanTest, SpanOnAFullRingCountsADrop)
{
    TraceRecorder recorder("t", nullptr, 2);
    recorder.Instant("a", "test");
    recorder.Instant("b", "test");
    {
        TraceSpan span(&recorder, "late", "test");
    }
    EXPECT_EQ(recorder.recorded(), 2u);
    EXPECT_EQ(recorder.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// ScopedThreadRecorder
// ---------------------------------------------------------------------------

TEST(ScopedThreadRecorderTest, BindsAndRestoresNested)
{
    TraceRecorder outer("outer", nullptr, 4);
    TraceRecorder inner("inner", nullptr, 4);
    EXPECT_EQ(CurrentThreadRecorder(), nullptr);
    {
        ScopedThreadRecorder bind_outer(&outer);
        EXPECT_EQ(CurrentThreadRecorder(), &outer);
        {
            ScopedThreadRecorder bind_inner(&inner);
            EXPECT_EQ(CurrentThreadRecorder(), &inner);
        }
        EXPECT_EQ(CurrentThreadRecorder(), &outer);
    }
    EXPECT_EQ(CurrentThreadRecorder(), nullptr);
}

TEST(ScopedThreadRecorderTest, BindingIsPerThread)
{
    TraceRecorder recorder("main", nullptr, 4);
    ScopedThreadRecorder bind(&recorder);
    TraceRecorder* seen = &recorder;
    std::thread([&seen] { seen = CurrentThreadRecorder(); }).join();
    EXPECT_EQ(seen, nullptr);
    EXPECT_EQ(CurrentThreadRecorder(), &recorder);
}

// ---------------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------------

TEST(TraceSessionTest, TracksKeepCreationOrderAndTotalsSum)
{
    TraceSession session(/*default_capacity=*/16);
    TraceRecorder* a = session.NewRecorder("alpha", nullptr);
    TraceRecorder* b = session.NewRecorder("beta", nullptr, 4);
    ASSERT_EQ(session.size(), 2u);
    EXPECT_EQ(&session.recorder(0), a);
    EXPECT_EQ(&session.recorder(1), b);
    EXPECT_EQ(a->capacity(), 16u);  // Session default.
    EXPECT_EQ(b->capacity(), 4u);   // Explicit override.

    for (int i = 0; i < 3; ++i) {
        a->Instant("a", "test");
    }
    for (int i = 0; i < 6; ++i) {
        b->Instant("b", "test");
    }
    EXPECT_EQ(session.total_recorded(), 3u + 4u);
    EXPECT_EQ(session.total_dropped(), 2u);
}

// ---------------------------------------------------------------------------
// ChromeTraceWriter
// ---------------------------------------------------------------------------

/** Minimal structural JSON check: every brace/bracket balances and
 *  every string literal closes (escape-aware). */
bool
JsonIsBalanced(const std::string& text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        switch (c) {
            case '"': in_string = true; break;
            case '{': stack.push_back('{'); break;
            case '[': stack.push_back('['); break;
            case '}':
                if (stack.empty() || stack.back() != '{') {
                    return false;
                }
                stack.pop_back();
                break;
            case ']':
                if (stack.empty() || stack.back() != '[') {
                    return false;
                }
                stack.pop_back();
                break;
            default: break;
        }
    }
    return !in_string && stack.empty();
}

TEST(ChromeTraceWriterTest, EmitsWellFormedTraceEventJson)
{
    TestClock clock;
    TraceSession session;
    TraceRecorder* recorder = session.NewRecorder("worker \"7\"", &clock, 4);
    clock.now = sim::Micros(42) + sim::Nanos(7);
    recorder->Instant("deny", "arbiter", {{"domain", 3}}, "agent",
                      "smart-harvest");
    recorder->Complete("collect", "epoch", sim::Micros(10),
                       sim::Micros(32), {{"epoch", 5}});
    recorder->Instant("x", "test");
    recorder->Instant("x", "test");
    recorder->Instant("x", "test");  // Overflows the 4-slot ring.

    const std::string json = ChromeTraceWriter::ToString(session);
    EXPECT_TRUE(JsonIsBalanced(json)) << json;
    EXPECT_EQ(json.rfind(R"({"displayTimeUnit":"ms","traceEvents":[)", 0),
              0u);
    // Process + per-track metadata (the track name is escaped).
    EXPECT_NE(json.find(R"("name":"process_name")"), std::string::npos);
    EXPECT_NE(json.find(R"("args":{"name":"worker \"7\""}})"),
              std::string::npos);
    // The instant: point phase, scoped to thread, integer + string args.
    EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
    EXPECT_NE(json.find(R"("ts":42.007,"s":"t",)"
                        R"("args":{"domain":3,"agent":"smart-harvest"})"),
              std::string::npos);
    // The span: integer-math microsecond begin + duration.
    EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
    EXPECT_NE(json.find(R"("ts":10.000,"dur":32.000,"args":{"epoch":5})"),
              std::string::npos);
    // The overflow is published, never silent.
    EXPECT_NE(json.find(R"("name":"trace_dropped","ts":0,)"
                        R"("args":{"dropped":1})"),
              std::string::npos);
}

TEST(ChromeTraceWriterTest, SerializationDrainsTheSession)
{
    TraceSession session;
    TraceRecorder* recorder = session.NewRecorder("t", nullptr, 8);
    recorder->Instant("once", "test");
    const std::string first = ChromeTraceWriter::ToString(session);
    EXPECT_NE(first.find(R"("name":"once")"), std::string::npos);

    // A second serialization sees an empty ring: metadata only.
    const std::string second = ChromeTraceWriter::ToString(session);
    EXPECT_EQ(second.find(R"("name":"once")"), std::string::npos);
    EXPECT_TRUE(JsonIsBalanced(second));
}

// ---------------------------------------------------------------------------
// Epoch-engine instrumentation: safeguard instants
// ---------------------------------------------------------------------------

/** Minimal agent whose actuator health is scripted from the test. */
class TraceFakeModel : public core::Model<int, int>
{
  public:
    explicit TraceFakeModel(const sim::Clock& clock) : clock_(clock) {}
    int CollectData() override { return 1; }
    bool ValidateData(const int&) override { return true; }
    void CommitData(sim::TimePoint, const int&) override {}
    void UpdateModel() override {}
    core::Prediction<int>
    ModelPredict() override
    {
        return core::MakePrediction(1, clock_.Now(), sim::Seconds(10));
    }
    core::Prediction<int>
    DefaultPredict() override
    {
        return core::MakeDefaultPrediction(0, clock_.Now(),
                                           sim::Seconds(10));
    }
    bool AssessModel() override { return true; }
    bool ShortCircuitEpoch() override { return false; }

  private:
    const sim::Clock& clock_;
};

class TraceFakeActuator : public core::Actuator<int>
{
  public:
    void TakeAction(std::optional<core::Prediction<int>>) override {}
    bool AssessPerformance() override { return performance_ok; }
    void Mitigate() override {}
    void CleanUp() override {}
    bool performance_ok = true;
};

TEST(EngineTraceTest, SafeguardTripEmitsTriggerMitigateResume)
{
    sim::EventQueue queue;
    TraceFakeModel model(queue);
    TraceFakeActuator actuator;
    core::Schedule schedule;
    schedule.data_per_epoch = 4;
    schedule.data_collect_interval = sim::Millis(10);
    schedule.max_epoch_time = sim::Millis(100);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = sim::Millis(200);
    schedule.assess_actuator_interval = sim::Millis(50);

    core::SimRuntime<int, int> runtime(queue, model, actuator, schedule);
    TraceSession session;
    runtime.SetTraceRecorder(session.NewRecorder("agent", &queue));
    runtime.Start();

    actuator.performance_ok = false;
    queue.RunUntil(sim::Millis(300));
    ASSERT_TRUE(runtime.actuator_halted());
    actuator.performance_ok = true;
    queue.RunUntil(sim::Millis(600));
    ASSERT_FALSE(runtime.actuator_halted());
    runtime.Stop();

    std::multiset<std::string> names;
    session.recorder(0).ConsumeAll([&names](const TraceEvent& event) {
        names.insert(event.name);
    });
    // Epoch phases span the trace...
    EXPECT_GT(names.count("collect"), 0u);
    EXPECT_GT(names.count("actuate"), 0u);
    // ...and the full safeguard arc is instant-marked.
    EXPECT_EQ(names.count("safeguard_trigger"), 1u);
    EXPECT_GT(names.count("mitigate"), 0u);
    EXPECT_EQ(names.count("safeguard_resume"), 1u);
}

// ---------------------------------------------------------------------------
// Sim-mode byte determinism
// ---------------------------------------------------------------------------

std::string
SimNodeTraceBytes()
{
    TraceSession session;
    cluster::NodeShardConfig config;
    config.num_nodes = 1;
    config.base_seed = 7;
    config.trace_session = &session;
    cluster::NodeShard shard(config);
    shard.Run(sim::Seconds(1));
    shard.Stop();
    return ChromeTraceWriter::ToString(session);
}

TEST(TraceDeterminismTest, SimNodeTraceBytesIdenticalAcrossRuns)
{
    const std::string first = SimNodeTraceBytes();
    const std::string second = SimNodeTraceBytes();
    EXPECT_GT(first.size(), 1'000u);
    EXPECT_NE(first.find(R"("name":"collect")"), std::string::npos);
    EXPECT_NE(first.find(R"("name":"actuate")"), std::string::npos);
    EXPECT_EQ(first, second);
}

std::string
FleetTraceBytes(std::size_t threads)
{
    TraceSession session;
    fleet::FleetConfig config;
    config.num_nodes = 2;
    config.num_threads = threads;
    config.window = sim::Millis(50);
    config.node.synthetic_agents = 4;
    config.trace = &session;
    fleet::ShardedFleetRunner runner(config);
    runner.Run(sim::Millis(400));
    runner.Stop();
    return ChromeTraceWriter::ToString(session);
}

TEST(TraceDeterminismTest, FleetTraceBytesInvariantAcrossThreadCounts)
{
    const std::string serial = FleetTraceBytes(1);
    const std::string wide = FleetTraceBytes(2);
    EXPECT_GT(serial.size(), 1'000u);
    // The fleet track records every window barrier; shard tracks carry
    // the per-node engine spans.
    EXPECT_NE(serial.find(R"("name":"fleet")"), std::string::npos);
    EXPECT_NE(serial.find(R"("name":"window")"), std::string::npos);
    EXPECT_NE(serial.find(R"("name":"shard0")"), std::string::npos);
    EXPECT_EQ(serial, wide);
}

// ---------------------------------------------------------------------------
// Concurrency: a 77-producer fleet recording while the writer drains
// ---------------------------------------------------------------------------

TEST(TraceConcurrencyTest, ManyProducersRecordWhileConsumerDrains)
{
    constexpr std::size_t kProducers = 77;
    constexpr int kEventsPerProducer = 200;

    TraceSession session;
    std::vector<TraceRecorder*> recorders;
    recorders.reserve(kProducers);
    for (std::size_t i = 0; i < kProducers; ++i) {
        recorders.push_back(session.NewRecorder(
            "agent" + std::to_string(i), nullptr, 64));
    }

    std::atomic<bool> go{false};
    std::atomic<std::size_t> done{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t i = 0; i < kProducers; ++i) {
        producers.emplace_back([&go, &done, recorder = recorders[i]] {
            while (!go.load(std::memory_order_acquire)) {
            }
            ScopedThreadRecorder bind(recorder);
            for (int e = 0; e < kEventsPerProducer; ++e) {
                if (e % 2 == 0) {
                    TraceSpan span(CurrentThreadRecorder(), "work",
                                   "test");
                    span.AddArg("e", e);
                } else {
                    recorder->Instant("tick", "test", {{"e", e}});
                }
            }
            done.fetch_add(1, std::memory_order_release);
        });
    }

    // The consumer drains every ring while the producers are still
    // recording — the SPSC contract under test.
    std::uint64_t consumed = 0;
    go.store(true, std::memory_order_release);
    while (done.load(std::memory_order_acquire) < kProducers) {
        for (TraceRecorder* recorder : recorders) {
            recorder->ConsumeAll([&consumed](const TraceEvent&) {
                ++consumed;
            });
        }
    }
    for (std::thread& producer : producers) {
        producer.join();
    }
    for (TraceRecorder* recorder : recorders) {
        recorder->ConsumeAll(
            [&consumed](const TraceEvent&) { ++consumed; });
    }

    // Every event was either consumed exactly once or counted dropped.
    EXPECT_EQ(consumed, session.total_recorded());
    EXPECT_EQ(session.total_recorded() + session.total_dropped(),
              kProducers * static_cast<std::uint64_t>(kEventsPerProducer));
}

}  // namespace
}  // namespace sol
