/**
 * @file
 * Tests for the workload generators: phase structure, frequency
 * sensitivity (or lack of it), burstiness, and access-pattern skew.
 */
#include <gtest/gtest.h>

#include "node/tiered_memory.h"
#include "workloads/best_effort.h"
#include "workloads/disk_speed.h"
#include "workloads/memory_patterns.h"
#include "workloads/object_store.h"
#include "workloads/synthetic_batch.h"
#include "workloads/tailbench.h"

namespace sol::workloads {
namespace {

using node::CpuResources;
using sim::Millis;
using sim::Seconds;
using sim::TimePoint;

/** Drives a workload for `span` at a fixed tick. */
void
Drive(node::CpuWorkload& workload, TimePoint start, sim::Duration span,
      const CpuResources& res, sim::Duration tick = Millis(2))
{
    for (TimePoint t = start; t < start + span; t += tick) {
        workload.Advance(t, tick, res);
    }
}

// ---------------------------------------------------------------------------
// SyntheticBatch
// ---------------------------------------------------------------------------

TEST(SyntheticBatchTest, BatchCompletionTimeMatchesCapacity)
{
    SyntheticBatchConfig config;
    config.work_gcycles = 60.0;
    config.period = Seconds(100);
    config.first_arrival = Seconds(1);
    SyntheticBatch workload(config);
    Drive(workload, TimePoint(0), Seconds(20), CpuResources{1.5, 8});
    // 60 Gcycles at 12 Gcycles/s = 5 s per batch.
    ASSERT_EQ(workload.batches_completed(), 1u);
    EXPECT_NEAR(workload.PerformanceValue(), 5.0, 0.05);
}

TEST(SyntheticBatchTest, OverclockingShortensBatches)
{
    SyntheticBatchConfig config;
    config.work_gcycles = 60.0;
    SyntheticBatch nominal(config);
    SyntheticBatch overclocked(config);
    Drive(nominal, TimePoint(0), Seconds(90), CpuResources{1.5, 8});
    Drive(overclocked, TimePoint(0), Seconds(90), CpuResources{2.3, 8});
    EXPECT_LT(overclocked.PerformanceValue(), nominal.PerformanceValue());
    EXPECT_NEAR(overclocked.PerformanceValue() /
                    nominal.PerformanceValue(),
                1.5 / 2.3, 0.05);
}

TEST(SyntheticBatchTest, IdleBetweenBatches)
{
    SyntheticBatchConfig config;
    config.work_gcycles = 60.0;
    config.first_arrival = Seconds(1);
    SyntheticBatch workload(config);
    Drive(workload, TimePoint(0), Seconds(10), CpuResources{1.5, 8});
    EXPECT_FALSE(workload.busy());
    EXPECT_LT(workload.Activity().utilization, 0.05);
    // Alpha source: mostly stalled while idle.
    EXPECT_GT(workload.Activity().stall_fraction, 0.5);
}

TEST(SyntheticBatchTest, BusyDuringBatch)
{
    SyntheticBatchConfig config;
    config.work_gcycles = 600.0;
    config.first_arrival = Seconds(1);
    SyntheticBatch workload(config);
    Drive(workload, TimePoint(0), Seconds(5), CpuResources{1.5, 8});
    EXPECT_TRUE(workload.busy());
    EXPECT_DOUBLE_EQ(workload.Activity().utilization, 1.0);
    EXPECT_EQ(workload.PerformanceUnit(), "s/batch");
    EXPECT_FALSE(workload.PerformanceHigherIsBetter());
}

TEST(SyntheticBatchTest, PeriodicArrivals)
{
    SyntheticBatchConfig config;
    config.work_gcycles = 60.0;
    config.period = Seconds(50);
    config.first_arrival = Seconds(1);
    SyntheticBatch workload(config);
    Drive(workload, TimePoint(0), Seconds(200), CpuResources{1.5, 8});
    EXPECT_EQ(workload.batches_completed(), 4u);
}

// ---------------------------------------------------------------------------
// ObjectStore (closed-loop)
// ---------------------------------------------------------------------------

TEST(ObjectStoreTest, SaturatesAtNominalFrequency)
{
    ObjectStore workload;
    Drive(workload, TimePoint(0), Seconds(30), CpuResources{1.5, 8});
    // At nominal the closed loop saturates the server.
    EXPECT_GT(workload.Activity().utilization, 0.9);
    EXPECT_GT(workload.completed_requests(), 1000u);
}

TEST(ObjectStoreTest, ThroughputAndLatencyImproveWithFrequency)
{
    ObjectStore nominal;
    ObjectStore overclocked;
    Drive(nominal, TimePoint(0), Seconds(30), CpuResources{1.5, 8});
    Drive(overclocked, TimePoint(0), Seconds(30), CpuResources{2.3, 8});
    EXPECT_GT(overclocked.ThroughputPerSec(),
              1.15 * nominal.ThroughputPerSec());
    EXPECT_LT(overclocked.PerformanceValue(), nominal.PerformanceValue());
}

TEST(ObjectStoreTest, ClosedLoopBoundsOutstandingRequests)
{
    ObjectStoreConfig config;
    config.num_clients = 16;
    ObjectStore workload(config);
    Drive(workload, TimePoint(0), Seconds(10), CpuResources{1.5, 2});
    EXPECT_LE(workload.queue_length(), 16u);
}

TEST(ObjectStoreTest, DeterministicForSeed)
{
    ObjectStore a;
    ObjectStore b;
    Drive(a, TimePoint(0), Seconds(5), CpuResources{1.5, 8});
    Drive(b, TimePoint(0), Seconds(5), CpuResources{1.5, 8});
    EXPECT_EQ(a.completed_requests(), b.completed_requests());
    EXPECT_DOUBLE_EQ(a.PerformanceValue(), b.PerformanceValue());
}

// ---------------------------------------------------------------------------
// DiskSpeed
// ---------------------------------------------------------------------------

TEST(DiskSpeedTest, ThroughputIndependentOfFrequency)
{
    DiskSpeed nominal;
    DiskSpeed overclocked;
    Drive(nominal, TimePoint(0), Seconds(10), CpuResources{1.5, 8});
    Drive(overclocked, TimePoint(0), Seconds(10), CpuResources{2.3, 8});
    EXPECT_DOUBLE_EQ(nominal.PerformanceValue(),
                     overclocked.PerformanceValue());
    EXPECT_NEAR(nominal.PerformanceValue(), 800.0, 1.0);
}

TEST(DiskSpeedTest, LowActivityFactor)
{
    DiskSpeed workload;
    Drive(workload, TimePoint(0), Seconds(1), CpuResources{1.5, 8});
    const auto activity = workload.Activity();
    // alpha = util * (1 - stall) must be tiny: this is the workload the
    // actuator safeguard must refuse to overclock.
    EXPECT_LT(activity.utilization * (1.0 - activity.stall_fraction),
              0.05);
}

// ---------------------------------------------------------------------------
// TailBench
// ---------------------------------------------------------------------------

TEST(TailBenchTest, ProfilesDiffer)
{
    const auto dnn = ImageDnnConfig();
    const auto moses = MosesConfig();
    EXPECT_GT(dnn.mean_service_ms, moses.mean_service_ms);
    EXPECT_LT(dnn.on_rate_per_sec, moses.on_rate_per_sec);
}

TEST(TailBenchTest, CompletesRequestsAndTracksLatency)
{
    TailBench workload(ImageDnnConfig(3));
    Drive(workload, TimePoint(0), Seconds(10), CpuResources{1.5, 6},
          sim::Micros(250));
    EXPECT_GT(workload.completed_requests(), 100u);
    EXPECT_GT(workload.PerformanceValue(), 0.0);
}

TEST(TailBenchTest, StarvationRaisesTailLatency)
{
    TailBench full(ImageDnnConfig(3));
    TailBench starved(ImageDnnConfig(3));
    Drive(full, TimePoint(0), Seconds(20), CpuResources{1.5, 6},
          sim::Micros(250));
    Drive(starved, TimePoint(0), Seconds(20), CpuResources{1.5, 1},
          sim::Micros(250));
    EXPECT_GT(starved.PerformanceValue(), 2.0 * full.PerformanceValue());
}

TEST(TailBenchTest, DemandTracksBursts)
{
    TailBench workload(MosesConfig(5));
    bool saw_high_demand = false;
    bool saw_low_demand = false;
    for (TimePoint t(0); t < Seconds(10); t += Millis(1)) {
        workload.Advance(t, Millis(1), CpuResources{1.5, 6});
        const double demand = workload.Activity().cores_demand;
        saw_high_demand |= demand >= 4.0;
        saw_low_demand |= demand <= 1.0;
    }
    EXPECT_TRUE(saw_high_demand);
    EXPECT_TRUE(saw_low_demand);
}

TEST(TailBenchTest, WindowedP99Bounded)
{
    TailBench workload(MosesConfig(5));
    Drive(workload, TimePoint(0), Seconds(10), CpuResources{1.5, 6},
          sim::Micros(250));
    const double p99_window =
        workload.P99InWindow(Seconds(10), Seconds(5));
    EXPECT_GT(p99_window, 0.0);
    // Windowed P99 cannot exceed the max latency overall and must be
    // a plausible millisecond value.
    EXPECT_LT(p99_window, 10000.0);
}

// ---------------------------------------------------------------------------
// BestEffort
// ---------------------------------------------------------------------------

TEST(BestEffortTest, ConsumesWhateverGranted)
{
    BestEffort workload;
    Drive(workload, TimePoint(0), Seconds(10), CpuResources{1.5, 3});
    EXPECT_NEAR(workload.core_seconds(), 30.0, 0.1);
    EXPECT_NEAR(workload.PerformanceValue(), 45.0, 0.2);  // 3*1.5*10.
}

TEST(BestEffortTest, ZeroCoresZeroWork)
{
    BestEffort workload;
    Drive(workload, TimePoint(0), Seconds(5), CpuResources{1.5, 0});
    EXPECT_DOUBLE_EQ(workload.core_seconds(), 0.0);
    EXPECT_DOUBLE_EQ(workload.Activity().utilization, 0.0);
}

// ---------------------------------------------------------------------------
// Memory patterns
// ---------------------------------------------------------------------------

TEST(MemoryPatternTest, GeneratesConfiguredRate)
{
    ZipfMemoryConfig config = ObjectStoreMemConfig(7);
    config.num_batches = 64;
    config.accesses_per_sec = 1000.0;
    ZipfMemoryPattern pattern(config);
    node::TieredMemory memory(64, 64);
    for (TimePoint t(0); t < Seconds(10); t += Millis(100)) {
        pattern.GenerateAccesses(t, Millis(100), memory);
    }
    EXPECT_NEAR(static_cast<double>(memory.stats().total()), 10000.0,
                200.0);
}

TEST(MemoryPatternTest, SkewConcentratesAccesses)
{
    ZipfMemoryConfig config = ObjectStoreMemConfig(7);
    config.num_batches = 64;
    config.churn_interval = sim::Duration(0);  // Stationary.
    ZipfMemoryPattern pattern(config);
    node::TieredMemory memory(64, 64);
    for (TimePoint t(0); t < Seconds(20); t += Millis(100)) {
        pattern.GenerateAccesses(t, Millis(100), memory);
    }
    // The most popular batch must dominate the least popular one.
    const auto hot = pattern.BatchForRank(0);
    EXPECT_GT(memory.LastAccess(hot), TimePoint(0));
}

TEST(MemoryPatternTest, SweepTouchesEveryBatch)
{
    ZipfMemoryConfig config = SpecJbbMemConfig(9);
    config.num_batches = 32;
    config.accesses_per_sec = 10.0;  // Nearly nothing but the sweep.
    config.sweep_interval = Seconds(5);
    ZipfMemoryPattern pattern(config);
    node::TieredMemory memory(32, 32);
    for (TimePoint t(0); t < Seconds(6); t += Millis(100)) {
        pattern.GenerateAccesses(t, Millis(100), memory);
    }
    for (node::BatchId b = 0; b < 32; ++b) {
        EXPECT_GT(memory.LastAccess(b), TimePoint(0)) << "batch " << b;
    }
}

TEST(OscillatingPatternTest, SleepsBetweenActivePhases)
{
    auto inner_config = SpecJbbMemConfig(11);
    inner_config.num_batches = 32;
    auto pattern = OscillatingPattern(
        std::make_unique<ZipfMemoryPattern>(inner_config), Seconds(10),
        Seconds(5));
    node::TieredMemory memory(32, 32);
    // Active phase: accesses flow.
    for (TimePoint t(0); t < Seconds(9); t += Millis(100)) {
        pattern.GenerateAccesses(t, Millis(100), memory);
    }
    const auto active_total = memory.stats().total();
    EXPECT_GT(active_total, 0u);
    EXPECT_TRUE(pattern.active());
    // Idle phase: silence.
    for (TimePoint t = Seconds(10); t < Seconds(14); t += Millis(100)) {
        pattern.GenerateAccesses(t, Millis(100), memory);
    }
    EXPECT_FALSE(pattern.active());
    EXPECT_EQ(memory.stats().total(), active_total);
}

TEST(OscillatingPatternTest, NameWrapsInner)
{
    auto inner_config = SpecJbbMemConfig(11);
    auto pattern = OscillatingPattern(
        std::make_unique<ZipfMemoryPattern>(inner_config), Seconds(10),
        Seconds(5));
    EXPECT_EQ(pattern.name(), "Oscillating(SpecJBB)");
}

}  // namespace
}  // namespace sol::workloads
