#!/usr/bin/env python3
"""Diff BENCH_scenario_*.json behavior verdicts against golden baselines.

bench/scenario_suite emits one BENCH_scenario_<name>.json per scenario
whose "behavior" table is the scenario's machine-readable verdict:
safeguard triggers, arbiter conflicts and denials, prediction drops,
short-circuit epochs, epoch-latency percentiles, plus the run's fleet
trace hash. Scenarios are byte-deterministic (pure-virtual-time demand
modulation on a thread-count-invariant fleet), so these values are
exact: any difference from the committed baseline in bench/baselines/
means the runtime's *behavior* changed, and this checker fails CI until
the change is either fixed or consciously re-baselined with --update.

Usage:
  tools/check_bench_verdicts.py [--bench-dir build] \
      [--baseline-dir bench/baselines] [--update] [FILE...]

With FILE arguments only those JSONs are checked; otherwise every
BENCH_scenario_*.json in --bench-dir. Exit status: 0 all verdicts
match, 1 behavior drift (or missing baseline), 2 usage/IO error.
"""

import argparse
import json
import pathlib
import shutil
import sys

# Fields of the "run" table that gate. Wall-clock and thread bookkeeping
# are report-only; everything else describes *what happened*.
RUN_GATED = (
    "mode",
    "nodes",
    "synthetics/node",
    "horizon ms",
    "seed",
    "deterministic",
    "fleet trace hash",
    "driver hash",
    "events",
)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}")


def row_map(doc, section, path):
    """Single-row section as {header: cell}."""
    try:
        sec = doc["sections"][section]
        return dict(zip(sec["headers"], sec["rows"][0]))
    except (KeyError, IndexError):
        raise SystemExit(f"error: {path} has no usable '{section}' table")


def behavior_map(doc, section, path):
    """(metric, value) rows as an ordered {metric: value}."""
    try:
        return {row[0]: row[1] for row in doc["sections"][section]["rows"]}
    except (KeyError, IndexError):
        raise SystemExit(f"error: {path} has no usable '{section}' table")


def check_file(current_path, baseline_path):
    """Returns a list of human-readable drift lines (empty = clean)."""
    current = load(current_path)
    baseline = load(baseline_path)
    drifts = []

    run_now = row_map(current, "run", current_path)
    run_base = row_map(baseline, "run", baseline_path)
    if run_now.get("deterministic") != "yes":
        drifts.append("run was not thread-count deterministic")
    for field in RUN_GATED:
        if run_now.get(field) != run_base.get(field):
            drifts.append(
                f"run.{field}: baseline {run_base.get(field)!r} "
                f"!= current {run_now.get(field)!r}")

    behave_now = behavior_map(current, "behavior", current_path)
    behave_base = behavior_map(baseline, "behavior", baseline_path)
    for metric in behave_base:
        if metric not in behave_now:
            drifts.append(f"behavior.{metric}: missing from current run")
        elif behave_now[metric] != behave_base[metric]:
            drifts.append(
                f"behavior.{metric}: baseline {behave_base[metric]} "
                f"!= current {behave_now[metric]}")
    for metric in behave_now:
        if metric not in behave_base:
            drifts.append(
                f"behavior.{metric}: new metric absent from baseline "
                f"(re-baseline with --update)")
    return drifts


def main():
    parser = argparse.ArgumentParser(
        description="Gate BENCH_scenario_*.json against golden baselines")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="specific BENCH_scenario_*.json files")
    parser.add_argument("--bench-dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory holding fresh BENCH_scenario_*.json")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=pathlib.Path("bench/baselines"),
                        help="directory of committed golden baselines")
    parser.add_argument("--update", action="store_true",
                        help="copy current results over the baselines "
                             "instead of failing on drift")
    args = parser.parse_args()

    files = args.files or sorted(args.bench_dir.glob("BENCH_scenario_*.json"))
    if not files:
        print(f"error: no BENCH_scenario_*.json under {args.bench_dir}",
              file=sys.stderr)
        return 2

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in files:
            shutil.copyfile(path, args.baseline_dir / path.name)
            print(f"baselined {path.name}")
        return 0

    failures = 0
    for path in files:
        baseline = args.baseline_dir / path.name
        if not baseline.exists():
            print(f"FAIL {path.name}: no baseline at {baseline} "
                  f"(record one with --update)", file=sys.stderr)
            failures += 1
            continue
        drifts = check_file(path, baseline)
        if drifts:
            failures += 1
            print(f"FAIL {path.name}: behavior drifted from baseline:",
                  file=sys.stderr)
            for line in drifts:
                print(f"  {line}", file=sys.stderr)
        else:
            print(f"ok   {path.name}")

    if failures:
        print(f"\n{failures} of {len(files)} scenario verdicts drifted. "
              f"If the change is intended, re-record with:\n"
              f"  tools/check_bench_verdicts.py --bench-dir <build> "
              f"--baseline-dir bench/baselines --update",
              file=sys.stderr)
        return 1
    print(f"all {len(files)} scenario verdicts match the baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
