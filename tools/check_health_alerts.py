#!/usr/bin/env python3
"""Diff HEALTH_scenario_*.json health timelines against golden baselines.

bench/scenario_suite samples every scenario's fleet health timeline at
each 100ms window barrier and evaluates the default SLO/alert pack
(telemetry::DefaultFleetAlertRules) at each sample. The resulting
HEALTH_scenario_<name>.json — timeline hash, per-series sample summary,
the full virtual-timestamped alert transition log, and per-SLO budget
accounting — is deterministic down to the byte across repeat runs and
worker-thread counts, so this checker gates it exactly: a changed
timeline hash, a shifted alert edge, or a different budget remainder
means fleet *health behavior* drifted, and CI fails until the change is
fixed or consciously re-baselined with --update.

Usage:
  tools/check_health_alerts.py [--bench-dir build] \
      [--baseline-dir bench/baselines] [--update] [FILE...]

With FILE arguments only those JSONs are checked; otherwise every
HEALTH_scenario_*.json in --bench-dir. Exit status: 0 all timelines
match, 1 health drift (or missing baseline), 2 usage/IO error.
"""

import argparse
import json
import pathlib
import shutil
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}")


def describe_alert(alert):
    return (f"{alert.get('rule')} {alert.get('state')} at "
            f"{alert.get('at_ns')}ns (value {alert.get('value')})")


def check_file(current_path, baseline_path):
    """Returns a list of human-readable drift lines (empty = clean)."""
    current = load(current_path)
    baseline = load(baseline_path)
    drifts = []

    for field in ("schema_version", "timeline_hash"):
        if current.get(field) != baseline.get(field):
            drifts.append(
                f"{field}: baseline {baseline.get(field)!r} "
                f"!= current {current.get(field)!r}")

    series_now = current.get("series", {})
    series_base = baseline.get("series", {})
    for name in series_base:
        if name not in series_now:
            drifts.append(f"series.{name}: missing from current run")
        elif series_now[name] != series_base[name]:
            drifts.append(
                f"series.{name}: baseline {series_base[name]} "
                f"!= current {series_now[name]}")
    for name in series_now:
        if name not in series_base:
            drifts.append(
                f"series.{name}: new series absent from baseline "
                f"(re-baseline with --update)")

    alerts_now = current.get("alerts", [])
    alerts_base = baseline.get("alerts", [])
    if alerts_now != alerts_base:
        base_set = [describe_alert(a) for a in alerts_base]
        now_set = [describe_alert(a) for a in alerts_now]
        for line in base_set:
            if line not in now_set:
                drifts.append(f"alert lost: {line}")
        for line in now_set:
            if line not in base_set:
                drifts.append(f"alert gained: {line}")
        if not any(d.startswith("alert ") for d in drifts):
            drifts.append("alert log reordered")

    if current.get("slos") != baseline.get("slos"):
        drifts.append(
            f"slos: baseline {baseline.get('slos')} "
            f"!= current {current.get('slos')}")
    return drifts


def main():
    parser = argparse.ArgumentParser(
        description="Gate HEALTH_scenario_*.json against golden baselines")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="specific HEALTH_scenario_*.json files")
    parser.add_argument("--bench-dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory holding fresh HEALTH_scenario_*.json")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=pathlib.Path("bench/baselines"),
                        help="directory of committed golden baselines")
    parser.add_argument("--update", action="store_true",
                        help="copy current results over the baselines "
                             "instead of failing on drift")
    args = parser.parse_args()

    files = args.files or sorted(args.bench_dir.glob("HEALTH_scenario_*.json"))
    if not files:
        print(f"error: no HEALTH_scenario_*.json under {args.bench_dir}",
              file=sys.stderr)
        return 2

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in files:
            shutil.copyfile(path, args.baseline_dir / path.name)
            print(f"baselined {path.name}")
        return 0

    failures = 0
    for path in files:
        baseline = args.baseline_dir / path.name
        if not baseline.exists():
            print(f"FAIL {path.name}: no baseline at {baseline} "
                  f"(record one with --update)", file=sys.stderr)
            failures += 1
            continue
        drifts = check_file(path, baseline)
        if drifts:
            failures += 1
            print(f"FAIL {path.name}: health timeline drifted from "
                  f"baseline:", file=sys.stderr)
            for line in drifts:
                print(f"  {line}", file=sys.stderr)
        else:
            print(f"ok   {path.name}")

    if failures:
        print(f"\n{failures} of {len(files)} health timelines drifted. "
              f"If the change is intended, re-record with:\n"
              f"  tools/check_health_alerts.py --bench-dir <build> "
              f"--baseline-dir bench/baselines --update",
              file=sys.stderr)
        return 1
    print(f"all {len(files)} health timelines match the baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
