#!/usr/bin/env python3
"""Determinism linter: forbids constructs that break bit-reproducibility.

SOL's core promise (ROADMAP.md north star) is that a seeded run is
bit-identical across repeats, thread counts, and — for everything the
golden tests fingerprint — machines. Most regressions against that
promise come from a handful of C++ constructs that look harmless in
review. Each rule below names the incident class it prevents:

  wall-clock            A `steady_clock::now()` (or any wall-clock read)
                        that leaks into simulated logic makes behavior
                        depend on host speed: the same seed produces
                        different event orders on a loaded CI runner.
                        Clock reads are only legal inside the designated
                        clock-policy files (the ThreadedRuntime's
                        SteadyClockPolicy and the trace SteadyClock),
                        or behind an explicit pragma for report-only /
                        contention-gated timing that never feeds
                        simulated state.

  unseeded-random       `std::random_device`, `rand()`, `srand()` draw
                        entropy outside the seeded sim::Rng streams, so
                        a failing run cannot be replayed. All randomness
                        must come from sim::Rng (seeded, splittable).

  libm-transcendental   sin/cos/log/pow/... are NOT correctly rounded
                        by IEEE-754; glibc and llvm-libm disagree in the
                        last ulp. A transcendental on a golden-hashed
                        path makes the golden pass on one libm and fail
                        on another. (`sqrt` is exempt: IEEE requires it
                        correctly rounded.) Scoped to src/sim/,
                        src/workloads/, and hash/fingerprint files —
                        the paths whose outputs are golden-fingerprinted.

  float-fingerprint     Floating-point arithmetic inside a hash or
                        fingerprint function feeds rounding noise into
                        the one value that must be exact. Quantize
                        first: `std::llround(value * scale)` is the
                        sanctioned idiom (see timeseries.cc), so lines
                        using llround/lround are exempt.

  unordered-iteration   Iterating a `std::unordered_map`/`set` yields a
                        libstdc++-specific order; feeding it into
                        serialized or hashed output produces goldens
                        that break on a standard-library upgrade.
                        Membership tests are fine; range-for is not.

Pragmas (every exception is visible and reviewed):
  line:  <code>  // determinism-lint: allow(<rule>)
  file:  // determinism-lint: allow-file(<rule>) -- <reason>
The file form requires a reason after `--`; a bare allow-file is itself
a lint error.

Usage:
  python3 tools/lint_determinism.py [--root REPO] \
      [--compile-commands build/compile_commands.json] [files...]

With no explicit files, lints every *.h/*.cc under <root>/src (the
compile-commands file, when given, narrows the .cc set to what actually
builds). Stdlib-only; exits 1 iff there are findings.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

# Files allowed to read the wall clock: the two clock-policy types that
# deliberately bridge host time into the runtime (and nothing else).
CLOCK_POLICY_FILES = {
    "src/core/threaded_runtime.h",  # SteadyClockPolicy
    "src/telemetry/trace.h",        # trace::SteadyClock
}

# Paths whose outputs are golden-fingerprinted; transcendental libm here
# is a cross-platform hazard (see module docstring).
TRANSCENDENTAL_SCOPES = ("src/sim/", "src/workloads/")

RULES = (
    "wall-clock",
    "unseeded-random",
    "libm-transcendental",
    "float-fingerprint",
    "unordered-iteration",
)

WALL_CLOCK_RE = re.compile(
    r"steady_clock\s*::\s*now|system_clock|high_resolution_clock"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bstd::time\s*\("
    r"|\blocaltime\s*\(|\bgmtime\s*\("
)

UNSEEDED_RANDOM_RE = re.compile(
    r"\brandom_device\b|\brand\s*\(\s*\)|\bsrand\s*\("
)

# sqrt is deliberately absent: IEEE-754 requires it correctly rounded.
TRANSCENDENTAL_RE = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(sin|cos|tan|asin|acos|atan|atan2|sinh|cosh|tanh"
    r"|exp|exp2|expm1|log|log2|log10|log1p"
    r"|pow|cbrt|hypot|tgamma|lgamma|erf|erfc)\s*\("
)

# `hashed` is excluded: an Add*Hashed() style function *consumes* a
# precomputed hash; it does not produce one.
FINGERPRINT_NAME_RE = re.compile(
    r"\b[\w:~]*(?:hash(?!ed)|fingerprint|fnv)[\w]*\s*\(", re.IGNORECASE
)

FLOAT_USE_RE = re.compile(r"\b(?:float|double)\b|\b\d+\.\d+")
FLOAT_SANCTIONED_RE = re.compile(r"\bll?round\b|\bstatic_cast<")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*"
    r"(\w+)\s*[;({=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*([\w.\->]+)\s*\)")

LINE_PRAGMA_RE = re.compile(r"determinism-lint:\s*allow\(([\w-]+)\)")
FILE_PRAGMA_RE = re.compile(
    r"determinism-lint:\s*allow-file\(([\w-]+)\)\s*(?:--\s*(.*))?"
)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line breaks
    so finding line numbers stay exact. Pragma comments are consumed
    separately before this runs."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (min(j, n - 1) - i - 1) + quote)
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def fingerprint_spans(code_lines):
    """Line-number ranges (1-based, inclusive) of function bodies whose
    definition line names a hash/fingerprint function. Brace-matched
    from the first '{' at or after the signature; the span starts at
    that brace, so float *parameters* in the signature don't flag —
    only unquantized arithmetic inside the body does."""
    spans = []
    for idx, line in enumerate(code_lines):
        if not FINGERPRINT_NAME_RE.search(line):
            continue
        if ";" in line.split("(")[0]:
            continue
        depth = 0
        body_begin = None
        for j in range(idx, min(idx + 400, len(code_lines))):
            stretch = code_lines[j]
            if ";" in stretch and body_begin is None:
                break  # Declaration or a call statement, not a body.
            for ch in stretch:
                if ch == "{":
                    depth += 1
                    if body_begin is None:
                        body_begin = j + 1
                elif ch == "}":
                    depth -= 1
            if body_begin is not None and depth == 0:
                spans.append((body_begin, j + 1))
                break
    return spans


def lint_text(rel_path: str, text: str):
    """All findings for one file. `rel_path` uses forward slashes
    relative to the repo root (rule scoping keys off it)."""
    findings = []
    raw_lines = text.splitlines()

    file_allows = {}
    for lineno, raw in enumerate(raw_lines, 1):
        m = FILE_PRAGMA_RE.search(raw)
        if m:
            rule, reason = m.group(1), (m.group(2) or "").strip()
            if rule not in RULES:
                findings.append(Finding(rel_path, lineno, "pragma",
                                        f"unknown rule '{rule}' in allow-file"))
            elif not reason:
                findings.append(Finding(
                    rel_path, lineno, "pragma",
                    "allow-file without a reason; write "
                    f"'allow-file({rule}) -- <why this is safe>'"))
            else:
                file_allows[rule] = reason

    # A pragma suppresses its own line; a comment-only pragma line also
    # covers the next line (for statements too long to share a line).
    line_allows = {}
    for lineno, raw in enumerate(raw_lines, 1):
        m = LINE_PRAGMA_RE.search(raw)
        if m:
            line_allows.setdefault(lineno, set()).add(m.group(1))
            if raw.lstrip().startswith("//"):
                line_allows.setdefault(lineno + 1, set()).add(m.group(1))

    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()

    def emit(lineno: int, rule: str, message: str):
        if rule in file_allows:
            return
        if rule in line_allows.get(lineno, ()):  # same-line pragma
            return
        findings.append(Finding(rel_path, lineno, rule, message))

    in_clock_policy = rel_path in CLOCK_POLICY_FILES
    for lineno, line in enumerate(code_lines, 1):
        if not in_clock_policy:
            m = WALL_CLOCK_RE.search(line)
            if m:
                emit(lineno, "wall-clock",
                     f"wall-clock read '{m.group(0).strip()}' outside a "
                     "clock-policy file; host time must not reach "
                     "simulated logic")
        m = UNSEEDED_RANDOM_RE.search(line)
        if m:
            emit(lineno, "unseeded-random",
                 f"'{m.group(0).strip()}' bypasses the seeded sim::Rng "
                 "streams; failing runs cannot be replayed")

    if rel_path.startswith(TRANSCENDENTAL_SCOPES) or re.search(
            r"hash|fingerprint", pathlib.PurePosixPath(rel_path).name,
            re.IGNORECASE):
        for lineno, line in enumerate(code_lines, 1):
            m = TRANSCENDENTAL_RE.search(line)
            if m:
                emit(lineno, "libm-transcendental",
                     f"'{m.group(1)}' is not correctly rounded; its last "
                     "ulp differs across libm implementations, so goldens "
                     "hashed from this path are platform-dependent")

    for begin, end in fingerprint_spans(code_lines):
        for lineno in range(begin, end + 1):
            line = code_lines[lineno - 1]
            if FLOAT_USE_RE.search(line) and not FLOAT_SANCTIONED_RE.search(
                    line):
                emit(lineno, "float-fingerprint",
                     "floating point inside a hash/fingerprint function; "
                     "quantize with std::llround(value * scale) first")

    unordered_names = set(UNORDERED_DECL_RE.findall(code))
    if unordered_names:
        for lineno, line in enumerate(code_lines, 1):
            for m in RANGE_FOR_RE.finditer(line):
                target = m.group(1).split("->")[-1].split(".")[-1]
                if target in unordered_names:
                    emit(lineno, "unordered-iteration",
                         f"range-for over unordered container '{target}': "
                         "iteration order is implementation-defined and "
                         "breaks serialized/hashed output on a libstdc++ "
                         "upgrade")
    return findings


def collect_files(root: pathlib.Path, compile_commands: pathlib.Path | None):
    src = root / "src"
    headers = sorted(src.rglob("*.h"))
    if compile_commands and compile_commands.is_file():
        sources = []
        for entry in json.loads(compile_commands.read_text()):
            f = pathlib.Path(entry["file"])
            if not f.is_absolute():
                f = pathlib.Path(entry["directory"]) / f
            try:
                if f.resolve().is_relative_to(src.resolve()):
                    sources.append(f.resolve())
            except (OSError, ValueError):
                continue
        sources = sorted(set(sources))
    else:
        sources = sorted(src.rglob("*.cc"))
    return headers + sources


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json narrowing the .cc set")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (default: src tree)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(__doc__)
        return 0

    root = pathlib.Path(args.root).resolve() if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    cc = pathlib.Path(args.compile_commands) if args.compile_commands else None

    if args.files:
        paths = [pathlib.Path(f).resolve() for f in args.files]
    else:
        paths = collect_files(root, cc)

    findings = []
    for path in paths:
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as err:
            findings.append(Finding(rel, 0, "io", str(err)))
            continue
        findings.extend(lint_text(rel, text))

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding)
    if findings:
        print(f"\n{len(findings)} determinism finding(s). Each needs a fix "
              "or a reviewed pragma (see tools/lint_determinism.py "
              "docstring).", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
