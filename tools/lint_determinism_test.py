#!/usr/bin/env python3
"""Self-test for tools/lint_determinism.py.

Each rule gets a known-bad fixture (must fire), a pragma'd twin (must
not), and — where the rule has scoping or a sanctioned idiom — a
fixture proving the carve-out. Runs as the `determinism_lint_selftest`
ctest, so a linter regression shows up next to the code it guards.
"""

from __future__ import annotations

import sys
import unittest

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
import lint_determinism as lint  # noqa: E402


def rules_hit(rel_path: str, text: str):
    return sorted({f.rule for f in lint.lint_text(rel_path, text)})


class WallClockRule(unittest.TestCase):
    BAD = "auto t = std::chrono::steady_clock::now();\n"

    def test_fires_outside_clock_policy(self):
        self.assertEqual(rules_hit("src/core/foo.cc", self.BAD),
                         ["wall-clock"])

    def test_all_wall_clock_apis_fire(self):
        for snippet in (
            "std::chrono::system_clock::to_time_t(x);",
            "std::chrono::high_resolution_clock::now();",
            "gettimeofday(&tv, nullptr);",
            "clock_gettime(CLOCK_MONOTONIC, &ts);",
        ):
            self.assertIn("wall-clock",
                          rules_hit("src/core/foo.cc", snippet + "\n"),
                          snippet)

    def test_clock_policy_files_exempt(self):
        for rel in sorted(lint.CLOCK_POLICY_FILES):
            self.assertEqual(rules_hit(rel, self.BAD), [])

    def test_line_pragma_suppresses(self):
        text = ("auto t = std::chrono::steady_clock::now();"
                "  // determinism-lint: allow(wall-clock)\n")
        self.assertEqual(rules_hit("src/core/foo.cc", text), [])

    def test_preceding_comment_pragma_suppresses_next_line(self):
        text = ("// determinism-lint: allow(wall-clock) -- pacing only\n"
                "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(rules_hit("src/core/foo.cc", text), [])

    def test_file_pragma_needs_reason(self):
        text = ("// determinism-lint: allow-file(wall-clock)\n" +
                self.BAD)
        self.assertEqual(rules_hit("src/core/foo.cc", text),
                         ["pragma", "wall-clock"])

    def test_file_pragma_with_reason_suppresses(self):
        text = ("// determinism-lint: allow-file(wall-clock) -- report "
                "timing only\n" + self.BAD)
        self.assertEqual(rules_hit("src/core/foo.cc", text), [])

    def test_match_in_comment_ignored(self):
        text = "// steady_clock::now() would be wrong here\nint x = 0;\n"
        self.assertEqual(rules_hit("src/core/foo.cc", text), [])


class UnseededRandomRule(unittest.TestCase):
    def test_each_entropy_source_fires(self):
        for snippet in (
            "std::random_device rd;",
            "int r = rand();",
            "srand(42);",
        ):
            self.assertEqual(rules_hit("src/sim/foo.cc", snippet + "\n"),
                             ["unseeded-random"], snippet)

    def test_seeded_rng_clean(self):
        self.assertEqual(
            rules_hit("src/sim/foo.cc",
                      "sim::Rng rng(seed);\nauto r = rng.NextU64();\n"),
            [])

    def test_operand_named_rand_clean(self):
        # Word boundaries: `grand()` or `rand(x)` (seeded helper) differ.
        self.assertEqual(rules_hit("src/sim/foo.cc", "grand();\n"), [])


class LibmTranscendentalRule(unittest.TestCase):
    BAD = "double y = std::pow(x, 2.5) + std::log(x);\n"

    def test_fires_in_sim_and_workloads(self):
        for rel in ("src/sim/foo.cc", "src/workloads/foo.cc"):
            self.assertEqual(rules_hit(rel, self.BAD),
                             ["libm-transcendental"], rel)

    def test_fires_in_hash_named_file(self):
        self.assertEqual(rules_hit("src/telemetry/trace_hash.cc", self.BAD),
                         ["libm-transcendental"])

    def test_out_of_scope_paths_exempt(self):
        # Agents may use libm; their outputs are not golden-hashed.
        self.assertEqual(rules_hit("src/agents/foo.cc", self.BAD), [])

    def test_sqrt_exempt(self):
        # IEEE-754 requires sqrt correctly rounded: it is portable.
        self.assertEqual(
            rules_hit("src/sim/foo.cc", "double s = std::sqrt(x);\n"), [])

    def test_file_pragma_suppresses(self):
        text = ("// determinism-lint: allow-file(libm-transcendental) -- "
                "quantized before hashing\n" + self.BAD)
        self.assertEqual(rules_hit("src/sim/foo.cc", text), [])


class FloatFingerprintRule(unittest.TestCase):
    BAD = (
        "std::uint64_t\n"
        "TraceHash(const Samples& samples)\n"
        "{\n"
        "    std::uint64_t hash = kFnvOffset;\n"
        "    for (double v : samples) {\n"
        "        hash ^= static_cast<std::uint64_t>(v * 1000.0);\n"
        "    }\n"
        "    return hash;\n"
        "}\n"
    )

    def test_fires_inside_fingerprint_function(self):
        self.assertEqual(rules_hit("src/telemetry/foo.cc", self.BAD),
                         ["float-fingerprint"])

    def test_llround_quantization_sanctioned(self):
        text = (
            "std::uint64_t\n"
            "TraceHash(double v)\n"
            "{\n"
            "    return std::llround(v * 1000.0);\n"
            "}\n"
        )
        self.assertEqual(rules_hit("src/telemetry/foo.cc", text), [])

    def test_float_outside_fingerprint_function_clean(self):
        text = (
            "double\n"
            "Mean(const Samples& samples)\n"
            "{\n"
            "    double total = 0.0;\n"
            "    return total / samples.size();\n"
            "}\n"
        )
        self.assertEqual(rules_hit("src/telemetry/foo.cc", text), [])

    def test_hashed_consumer_function_exempt(self):
        # Add*Hashed() consumes a precomputed hash; it is not a
        # fingerprint producer.
        text = (
            "void\n"
            "AddHashed(std::uint32_t index, double value)\n"
            "{\n"
            "    features_.push_back(Feature{index, value});\n"
            "}\n"
        )
        self.assertEqual(rules_hit("src/ml/foo.cc", text), [])


class UnorderedIterationRule(unittest.TestCase):
    def test_range_for_over_unordered_fires(self):
        text = (
            "std::unordered_map<std::string, int> counts_;\n"
            "void Dump() {\n"
            "    for (const auto& [k, v] : counts_) {\n"
            "        out << k << v;\n"
            "    }\n"
            "}\n"
        )
        self.assertEqual(rules_hit("src/telemetry/foo.cc", text),
                         ["unordered-iteration"])

    def test_membership_use_clean(self):
        text = (
            "std::unordered_set<int> seen_;\n"
            "bool Contains(int id) { return seen_.count(id) > 0; }\n"
        )
        self.assertEqual(rules_hit("src/telemetry/foo.cc", text), [])

    def test_ordered_map_iteration_clean(self):
        text = (
            "std::map<std::string, int> counts_;\n"
            "void Dump() {\n"
            "    for (const auto& [k, v] : counts_) {\n"
            "        out << k << v;\n"
            "    }\n"
            "}\n"
        )
        self.assertEqual(rules_hit("src/telemetry/foo.cc", text), [])


class PragmaHygiene(unittest.TestCase):
    def test_unknown_rule_in_file_pragma_flagged(self):
        text = ("// determinism-lint: allow-file(no-such-rule) -- oops\n"
                "int x = 0;\n")
        self.assertEqual(rules_hit("src/core/foo.cc", text), ["pragma"])

    def test_pragma_for_one_rule_does_not_mute_others(self):
        text = ("// determinism-lint: allow-file(wall-clock) -- timing\n"
                "std::random_device rd;\n")
        self.assertEqual(rules_hit("src/core/foo.cc", text),
                         ["unseeded-random"])


class RepoTreeIsClean(unittest.TestCase):
    def test_src_tree_has_no_findings(self):
        # The tree itself is the last fixture: every exception in src/
        # must be a reviewed pragma, never an unexplained finding.
        self.assertEqual(lint.main([]), 0)


if __name__ == "__main__":
    unittest.main()
