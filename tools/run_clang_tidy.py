#!/usr/bin/env python3
"""Ratcheted clang-tidy runner: counts can only go down.

Runs clang-tidy (config from the repo's .clang-tidy) over every src/
translation unit in compile_commands.json and compares per-check
finding counts against the committed baseline
(tools/clang_tidy_baseline.json):

  - a check whose count EXCEEDS its baseline fails the run (new debt);
  - a check whose count DROPPED below baseline also fails, with
    instructions to re-ratchet — otherwise the headroom silently
    becomes room for new findings of the same check;
  - `--update` rewrites the baseline, but refuses to raise any count:
    lowering the bar is a reviewed edit to the JSON, never a flag.

Results are cached per file under --cache-dir keyed on a content hash
of (file bytes, .clang-tidy, compiler flags, clang-tidy version), so an
incremental CI run re-analyzes only what changed.

Usage:
  python3 tools/run_clang_tidy.py --compile-commands build/compile_commands.json \
      [--cache-dir .cache/clang-tidy] [--report report.txt] [--update] [--jobs N]

Stdlib-only; exits non-zero on ratchet violations or clang-tidy crashes.
"""

from __future__ import annotations

import argparse
import collections
import concurrent.futures
import hashlib
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[\w.,-]+)\]$"
)

BASELINE_PATH = pathlib.Path(__file__).parent / "clang_tidy_baseline.json"


def find_clang_tidy() -> str | None:
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_commands(path: pathlib.Path, root: pathlib.Path):
    """(file, directory, command) for every src/ TU."""
    entries = []
    src = (root / "src").resolve()
    for entry in json.loads(path.read_text()):
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry["directory"]) / f
        f = f.resolve()
        try:
            if f.is_relative_to(src):
                entries.append((f, entry["directory"],
                                entry.get("command")
                                or " ".join(entry["arguments"])))
        except (OSError, ValueError):
            continue
    return sorted(entries)


def cache_key(tidy: str, tidy_version: str, config: str, file: pathlib.Path,
              command: str) -> str:
    h = hashlib.sha256()
    for part in (tidy_version, config, command):
        h.update(part.encode())
        h.update(b"\0")
    h.update(file.read_bytes())
    return h.hexdigest()


def run_one(tidy: str, file: pathlib.Path, build_dir: str):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", str(file)],
        capture_output=True, text=True, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            for check in m.group("check").split(","):
                findings.append({
                    "path": m.group("path"),
                    "line": int(m.group("line")),
                    "check": check,
                    "message": m.group("message"),
                })
    # clang-tidy exits 1 when it emits warnings; a crash or config error
    # surfaces on stderr with no parseable findings.
    crashed = proc.returncode not in (0, 1) and not findings
    return findings, crashed, proc.stderr


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compile-commands", required=True)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--report", default=None,
                        help="write the full finding list to this file")
    parser.add_argument("--update", action="store_true",
                        help="re-ratchet the baseline downward")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args(argv)

    root = pathlib.Path(__file__).resolve().parent.parent
    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: no clang-tidy on PATH", file=sys.stderr)
        return 2
    tidy_version = subprocess.run([tidy, "--version"], capture_output=True,
                                  text=True, check=False).stdout.strip()
    config = (root / ".clang-tidy").read_text()

    cc_path = pathlib.Path(args.compile_commands).resolve()
    entries = load_compile_commands(cc_path, root)
    if not entries:
        print("run_clang_tidy: no src/ entries in compile_commands.json",
              file=sys.stderr)
        return 2
    build_dir = str(cc_path.parent)

    cache_dir = pathlib.Path(args.cache_dir) if args.cache_dir else None
    if cache_dir:
        cache_dir.mkdir(parents=True, exist_ok=True)

    all_findings = []
    crashes = []

    def analyze(entry):
        file, _, command = entry
        key = None
        if cache_dir:
            key = cache_key(tidy, tidy_version, config, file, command)
            cached = cache_dir / f"{key}.json"
            if cached.is_file():
                return json.loads(cached.read_text()), False, ""
        findings, crashed, stderr = run_one(tidy, file, build_dir)
        if cache_dir and key and not crashed:
            (cache_dir / f"{key}.json").write_text(json.dumps(findings))
        return findings, crashed, stderr

    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for (file, _, _), (findings, crashed, stderr) in zip(
                entries, pool.map(analyze, entries)):
            if crashed:
                crashes.append((file, stderr))
            all_findings.extend(findings)

    if crashes:
        for file, stderr in crashes:
            print(f"run_clang_tidy: clang-tidy failed on {file}:\n{stderr}",
                  file=sys.stderr)
        return 2

    # Dedupe (headers analyzed from several TUs report repeats).
    unique = {(f["path"], f["line"], f["check"], f["message"])
              for f in all_findings}
    counts = collections.Counter(check for _, _, check, _ in unique)

    if args.report:
        lines = [f"{p}:{ln}: {msg} [{chk}]"
                 for p, ln, chk, msg in sorted(unique)]
        pathlib.Path(args.report).write_text(
            "\n".join(lines) + ("\n" if lines else ""))

    baseline = {}
    bootstrap = True
    if BASELINE_PATH.is_file():
        data = json.loads(BASELINE_PATH.read_text())
        baseline = data.get("checks", {})
        bootstrap = bool(data.get("bootstrap", False))

    if args.update:
        # Establishing the first real baseline (bootstrap) may record
        # any counts; after that, --update can only lower them.
        raised = {} if bootstrap else {
            c: (baseline.get(c, 0), n) for c, n in counts.items()
            if n > baseline.get(c, 0)}
        if raised:
            for check, (old, new) in sorted(raised.items()):
                print(f"refusing to raise baseline: {check} {old} -> {new}",
                      file=sys.stderr)
            return 1
        BASELINE_PATH.write_text(json.dumps(
            {"_comment": "Ratcheted clang-tidy baseline: counts may only "
                         "decrease. Regenerate with tools/run_clang_tidy.py "
                         "--update after paying down findings.",
             "checks": dict(sorted(counts.items()))}, indent=2) + "\n")
        print(f"baseline updated: {sum(counts.values())} finding(s) across "
              f"{len(counts)} check(s)")
        return 0

    if bootstrap:
        # The committed baseline was seeded before any clang-tidy run
        # existed (the repo is built with GCC locally). Report counts
        # and pass; committing `--update` output replaces this with the
        # real ratchet.
        for check, n in sorted(counts.items()):
            print(f"bootstrap: {check}: {n} finding(s)")
        print(f"clang-tidy bootstrap: {sum(counts.values())} finding(s) "
              f"across {len(entries)} TU(s); run with --update and commit "
              "tools/clang_tidy_baseline.json to arm the ratchet")
        return 0

    failed = False
    for check in sorted(set(counts) | set(baseline)):
        have, allowed = counts.get(check, 0), baseline.get(check, 0)
        if have > allowed:
            failed = True
            print(f"RATCHET: {check}: {have} finding(s), baseline allows "
                  f"{allowed}")
            for p, ln, chk, msg in sorted(unique):
                if chk == check:
                    print(f"  {p}:{ln}: {msg}")
        elif have < allowed:
            failed = True
            print(f"RATCHET: {check}: improved to {have} (baseline "
                  f"{allowed}); run tools/run_clang_tidy.py --update to "
                  "lock in the gain")
    if not failed:
        print(f"clang-tidy ratchet OK: {sum(counts.values())} finding(s) "
              f"across {len(entries)} TU(s), all within baseline")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
